"""CLI trace surface: ``--trace-out`` on map, ``trace summarize/chrome``."""

import json

from repro.cli import main
from repro.obs.export import read_trace


def run_map_with_trace(tmp_path, capsys):
    trace_file = tmp_path / "run.trace.jsonl"
    # --no-cache: the process-default cache would turn repeat runs into
    # hits, which record no pass spans -- each test wants a full pipeline.
    code = main(
        [
            "map",
            "--generate",
            "ghz:6",
            "--backend",
            "ankaa3",
            "--no-cache",
            "--trace-out",
            str(trace_file),
        ]
    )
    output = capsys.readouterr().out
    return code, trace_file, output


class TestMapTraceOut:
    def test_map_writes_a_readable_trace(self, tmp_path, capsys):
        code, trace_file, output = run_map_with_trace(tmp_path, capsys)
        assert code == 0
        assert "trace        :" in output
        metas, spans, counters = read_trace(trace_file)
        assert metas[0]["tool"] == "repro-map map"
        names = {span.name for span in spans}
        assert {"compile", "load", "place", "route", "validate", "metrics"} <= names
        assert "kernel.cost_evaluations" in counters
        assert counters["kernel.swaps_applied"] >= 0

    def test_map_without_trace_out_writes_nothing(self, tmp_path, capsys):
        code = main(["map", "--generate", "ghz:6", "--backend", "ankaa3"])
        assert code == 0
        assert "trace        :" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []


class TestTraceSummarize:
    def test_summarize_renders_the_breakdown(self, tmp_path, capsys):
        _, trace_file, _ = run_map_with_trace(tmp_path, capsys)
        assert main(["trace", "summarize", str(trace_file)]) == 0
        output = capsys.readouterr().out
        assert "per-phase:" in output
        assert "route pass per router:" in output
        assert "qlosure" in output
        assert "kernel.cost_evaluations" in output

    def test_summarize_missing_file_is_a_user_error(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "repro-map: error:" in capsys.readouterr().err

    def test_summarize_malformed_file_names_the_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"\n')
        assert main(["trace", "summarize", str(bad)]) == 2
        assert ":1:" in capsys.readouterr().err


class TestTraceChrome:
    def test_chrome_export_defaults_next_to_the_input(self, tmp_path, capsys):
        _, trace_file, _ = run_map_with_trace(tmp_path, capsys)
        assert main(["trace", "chrome", str(trace_file)]) == 0
        output = capsys.readouterr().out
        assert "Perfetto" in output
        exported = trace_file.with_suffix(".chrome.json")
        assert exported.exists()
        trace = json.loads(exported.read_text())
        assert trace["traceEvents"]
        assert all(event["ph"] == "X" for event in trace["traceEvents"])

    def test_chrome_export_honours_explicit_output(self, tmp_path, capsys):
        _, trace_file, _ = run_map_with_trace(tmp_path, capsys)
        target = tmp_path / "custom.json"
        assert main(["trace", "chrome", str(trace_file), "--output", str(target)]) == 0
        capsys.readouterr()
        assert json.loads(target.read_text())["traceEvents"]
