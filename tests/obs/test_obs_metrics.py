"""Tests for the unified metrics registry (:mod:`repro.obs.metrics`)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    prometheus_name,
)


class TestHistogram:
    def test_observations_land_in_their_bucket(self):
        histogram = Histogram(bounds=(0.01, 0.1, 1.0))
        histogram.observe(0.005)
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)  # overflow
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.max == 5.0

    def test_snapshot_buckets_are_per_bucket_not_cumulative(self):
        histogram = Histogram(bounds=(0.01, 0.1))
        histogram.observe(0.005)
        histogram.observe(0.05)
        snap = histogram.snapshot()
        assert snap["buckets"] == {"<=0.01": 1, "<=0.1": 1, ">0.1": 0}
        assert snap["count"] == 2
        assert snap["mean_seconds"] == pytest.approx(0.0275, abs=1e-6)

    def test_cumulative_buckets_end_in_inf_total(self):
        histogram = Histogram(bounds=(0.01, 0.1))
        histogram.observe(0.005)
        histogram.observe(0.05)
        histogram.observe(50.0)
        assert histogram.cumulative_buckets() == [
            ("0.01", 1),
            ("0.1", 2),
            ("+Inf", 3),
        ]

    def test_negative_observations_clamp_to_zero(self):
        histogram = Histogram()
        histogram.observe(-1.0)
        assert histogram.total == 0.0
        assert histogram.counts[0] == 1

    def test_bounds_must_be_positive_and_ascending(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(0.1, 0.01))
        with pytest.raises(ValueError):
            Histogram(bounds=(0.0, 0.1))

    def test_default_bounds_cover_sub_millisecond_to_seconds(self):
        assert DEFAULT_BUCKET_BOUNDS[0] <= 0.001
        assert DEFAULT_BUCKET_BOUNDS[-1] >= 5.0


class TestMetricsRegistry:
    def test_counters_accumulate_and_default_to_zero(self):
        registry = MetricsRegistry()
        assert registry.counter("requests") == 0
        registry.increment("requests")
        registry.increment("requests", 4)
        assert registry.counter("requests") == 5

    def test_observe_creates_histograms_lazily(self):
        registry = MetricsRegistry()
        assert registry.histogram("latency") is None
        registry.observe("latency", 0.25)
        assert registry.histogram("latency").count == 1

    def test_snapshot_merges_extra_counters_additively(self):
        registry = MetricsRegistry()
        registry.increment("cache.evictions", 2)
        snap = registry.snapshot(
            gauges={"queue_depth": 3},
            extra_counters={"cache.evictions": 5, "cache.hits": 1},
        )
        assert snap["counters"] == {"cache.evictions": 7, "cache.hits": 1}
        assert snap["gauges"] == {"queue_depth": 3}

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.increment("a")
        registry.observe("b", 0.1)
        json.dumps(registry.snapshot())  # must not raise


class TestPrometheusExposition:
    def test_counters_render_with_total_suffix_and_type(self):
        registry = MetricsRegistry()
        registry.increment("http.requests", 3)
        text = registry.prometheus()
        assert "# TYPE repro_http_requests_total counter" in text
        assert "repro_http_requests_total 3" in text
        assert text.endswith("\n")

    def test_histograms_render_cumulative_le_buckets(self):
        registry = MetricsRegistry()
        registry.observe("compile.latency", 0.002)
        registry.observe("compile.latency", 0.3)
        text = registry.prometheus()
        assert "# TYPE repro_compile_latency_seconds histogram" in text
        assert 'repro_compile_latency_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_compile_latency_seconds_count 2" in text
        assert "repro_compile_latency_seconds_sum" in text
        # buckets must be monotone non-decreasing in declaration order
        cumulative = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_compile_latency_seconds_bucket")
        ]
        assert cumulative == sorted(cumulative)

    def test_gauges_and_bools_render(self):
        registry = MetricsRegistry()
        text = registry.prometheus(gauges={"accepting": True, "queue_depth": 2})
        assert "# TYPE repro_accepting gauge" in text
        assert "repro_accepting 1" in text
        assert "repro_queue_depth 2" in text

    def test_every_sample_line_parses(self):
        """Minimal exposition-format check: `name{labels} value` per line."""
        import re

        registry = MetricsRegistry()
        registry.increment("jobs.completed", 7)
        registry.observe("wait", 0.02)
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? -?[0-9.+eInf]+$"
        )
        for line in registry.prometheus(gauges={"depth": 0}).splitlines():
            if line.startswith("#"):
                assert line.startswith("# TYPE ")
            else:
                assert sample.match(line), line


class TestPrometheusName:
    def test_dots_and_dashes_become_underscores(self):
        assert prometheus_name("cache.disk-hits") == "repro_cache_disk_hits"

    def test_leading_digit_gets_guard(self):
        assert prometheus_name("9lives", prefix="") == "_9lives"

    def test_prefix_is_configurable(self):
        assert prometheus_name("x", prefix="acme_") == "acme_x"


class TestServeFacade:
    def test_serve_metrics_is_the_shared_registry(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.serve.metrics import DEFAULT_BUCKET_BOUNDS as SERVE_BOUNDS
        from repro.serve.metrics import Histogram as ServeHistogram
        from repro.serve.metrics import ServeMetrics

        assert issubclass(ServeMetrics, MetricsRegistry)
        assert ServeHistogram is Histogram
        assert SERVE_BOUNDS is DEFAULT_BUCKET_BOUNDS
        metrics = ServeMetrics()
        metrics.increment("requests")
        assert "repro_requests_total 1" in metrics.prometheus()
