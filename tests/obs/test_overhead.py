"""Perf gate: the disabled tracer must be free on the compile hot path.

Tracing is on by default in the sense that every pass and the routing
kernel *call into* the tracer unconditionally -- the null tracer makes
those calls no-ops.  This gate pins that claim: compiling through the
shipped instrumentation (real ``current_tracer`` lookups, shared null
span) must cost **<2%** versus an in-process baseline where the tracer
lookups are short-circuited to a pre-bound stub.

Methodology (timing tests are noise-prone, so the design is defensive):

* one warmup compile before any measurement (imports, caches, allocator),
* baseline/no-op rounds are *interleaved* so drift (thermal, other load)
  hits both sides equally,
* min-of-rounds is compared, not means -- the minimum is the best
  estimate of the true cost, discarding scheduler hiccups,
* a 2ms absolute epsilon absorbs timer granularity on sub-100ms runs.
"""

import time

import pytest

import repro.api.cache as cache_module
import repro.api.pipeline as pipeline_module
import repro.routing.engine as engine_module
from repro.api import CompileRequest, compile as api_compile
from repro.hardware.topologies import grid_topology
from repro.obs.trace import NULL_TRACER

ROUNDS = 5
GRID = grid_topology(4, 4)
REQUEST = CompileRequest(generate="qft:7", backend=GRID, router="qlosure", seed=0)


def one_compile_seconds() -> float:
    start = time.perf_counter()
    api_compile(REQUEST, cache=False)
    return time.perf_counter() - start


class TestNoopTracerOverhead:
    def test_disabled_tracer_costs_under_two_percent(self):
        one_compile_seconds()  # warmup
        stub = lambda: NULL_TRACER  # noqa: E731 -- pre-bound, zero lookup work
        baseline, noop = [], []
        for _ in range(ROUNDS):
            with pytest.MonkeyPatch.context() as patch:
                for module in (pipeline_module, engine_module, cache_module):
                    patch.setattr(module, "current_tracer", stub)
                baseline.append(one_compile_seconds())
            noop.append(one_compile_seconds())
        min_baseline, min_noop = min(baseline), min(noop)
        assert min_noop <= min_baseline * 1.02 + 0.002, (
            f"no-op tracer overhead gate: {min_noop:.4f}s traced-path vs "
            f"{min_baseline:.4f}s stubbed baseline "
            f"({(min_noop / min_baseline - 1) * 100:+.1f}%)"
        )

    def test_null_tracer_allocates_no_spans_during_compile(self):
        api_compile(REQUEST, cache=False)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.counters == {}
