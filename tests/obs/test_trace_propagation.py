"""End-to-end trace propagation: pipeline spans, batch stitching, cache events.

The load-bearing claims of the telemetry layer:

* one ``compile()`` under a tracer yields the full pass-span sequence with
  routing-kernel counter attributes on the route span,
* ``compile_many`` stitches worker spans under one batch trace id for
  workers in {1, 2}, with parallel runs span-for-span identical (names and
  attributes; durations and ids are obviously run-specific) to serial runs,
* tracing is observational only: traced output is bit-for-bit identical to
  untraced output, and the cache emits hit/miss/eviction counters.
"""

import pytest

from repro.api import CompileCache, CompileRequest, compile as api_compile, compile_many
from repro.hardware.topologies import grid_topology
from repro.obs.trace import Tracer, use_tracer

GRID = grid_topology(4, 4)


def request(seed: int = 0, router: str = "qlosure") -> CompileRequest:
    return CompileRequest(
        generate="qft:7", backend=GRID, router=router, seed=seed
    )


def gates_of(result):
    return [
        (g.name, g.qubits, g.params) for g in result.routing.routed_circuit
    ]


def span_shape(tracer):
    """The run-independent shape of a trace: ordered (name, attributes).

    The batch span itself is excluded -- its ``workers`` attribute names the
    requested parallelism, which is exactly what serial-vs-parallel runs
    differ in.  Every other span must match span-for-span.
    """
    return [
        (span.name, dict(span.attributes))
        for span in tracer.spans
        if span.name != "batch"
    ]


class TestPipelineSpans:
    def test_compile_emits_every_pass_span(self):
        tracer = Tracer()
        with use_tracer(tracer):
            api_compile(request(), cache=False)
        names = [span.name for span in tracer.spans]
        for expected in ("load", "place", "route", "validate", "metrics", "compile"):
            assert expected in names

    def test_pass_spans_nest_under_the_compile_span(self):
        tracer = Tracer()
        with use_tracer(tracer):
            api_compile(request(), cache=False)
        by_name = {span.name: span for span in tracer.spans}
        root = by_name["compile"]
        for name in ("load", "place", "route", "validate", "metrics"):
            assert by_name[name].parent_id == root.span_id

    def test_route_span_carries_kernel_counters(self):
        tracer = Tracer()
        with use_tracer(tracer):
            result = api_compile(request(), cache=False)
        route = next(span for span in tracer.spans if span.name == "route")
        assert route.attributes["router"] == "qlosure"
        assert route.attributes["swaps"] == result.routing.swaps_added
        assert (
            route.attributes["kernel.cost_evaluations"]
            == result.routing.cost_evaluations
        )
        assert route.attributes["kernel.front_rebuilds"] > 0
        assert route.attributes["kernel.candidate_builds"] > 0
        # and the same numbers land on the tracer's counters
        assert (
            tracer.counters["kernel.cost_evaluations"]
            == result.routing.cost_evaluations
        )

    @pytest.mark.parametrize("router", ["qlosure", "qmap-like"])
    def test_heuristic_cache_hits_are_counted(self, router):
        tracer = Tracer()
        with use_tracer(tracer):
            api_compile(request(router=router), cache=False)
        assert tracer.counters["kernel.heuristic_cache_hits"] >= 0

    def test_compile_span_names_the_workload(self):
        tracer = Tracer()
        with use_tracer(tracer):
            api_compile(request(), cache=False)
        root = next(span for span in tracer.spans if span.name == "compile")
        assert root.attributes["router"] == "qlosure"
        assert root.attributes["num_qubits"] == 7


class TestObservationalOnly:
    def test_traced_output_is_bit_identical_to_untraced(self):
        baseline = api_compile(request(), cache=False)
        tracer = Tracer()
        with use_tracer(tracer):
            traced = api_compile(request(), cache=False)
        assert gates_of(traced) == gates_of(baseline)
        assert traced.routing.final_layout == baseline.routing.final_layout
        assert traced.metrics["swaps"] == baseline.metrics["swaps"]
        assert tracer.spans  # the trace actually recorded something

    def test_traced_batch_is_bit_identical_to_untraced(self):
        reqs = [request(seed) for seed in range(3)]
        baseline = compile_many(reqs, workers=2, cache=False)
        tracer = Tracer()
        with use_tracer(tracer):
            traced = compile_many(reqs, workers=2, cache=False)
        for a, b in zip(baseline.results, traced.results):
            assert gates_of(a) == gates_of(b)


class TestBatchStitching:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_spans_stitch_under_one_trace_id(self, workers):
        tracer = Tracer()
        with use_tracer(tracer):
            compile_many([request(seed) for seed in range(3)], workers=workers, cache=False)
        assert tracer.spans
        assert {span.trace_id for span in tracer.spans} == {tracer.trace_id}

    def test_parallel_worker_spans_record_in_other_processes(self):
        import os

        tracer = Tracer()
        with use_tracer(tracer):
            compile_many([request(seed) for seed in range(3)], workers=2, cache=False)
        pids = {span.pid for span in tracer.spans}
        assert os.getpid() in pids  # the batch span itself
        assert len(pids) > 1  # and at least one forked worker lane

    def test_request_spans_parent_under_the_batch_span(self):
        tracer = Tracer()
        with use_tracer(tracer):
            compile_many([request(seed) for seed in range(2)], workers=2, cache=False)
        batch = next(span for span in tracer.spans if span.name == "batch")
        requests = [span for span in tracer.spans if span.name == "request"]
        assert len(requests) == 2
        assert all(span.parent_id == batch.span_id for span in requests)

    def test_parallel_trace_matches_serial_trace_span_for_span(self):
        reqs = [request(seed) for seed in range(3)]
        serial, parallel = Tracer(), Tracer()
        with use_tracer(serial):
            compile_many(reqs, workers=1, cache=False)
        with use_tracer(parallel):
            compile_many(reqs, workers=2, cache=False)
        assert span_shape(serial) == span_shape(parallel)

    def test_batch_span_reports_cache_partition(self):
        cache = CompileCache()
        api_compile(request(0), cache=cache)  # pre-warm one entry
        reqs = [request(0), request(0), request(1)]
        tracer = Tracer()
        with use_tracer(tracer):
            compile_many(reqs, workers=1, cache=cache)
        batch = next(span for span in tracer.spans if span.name == "batch")
        assert batch.attributes["cache_hits"] == 2
        assert batch.attributes["cache_misses"] == 1


class TestCacheEvents:
    def test_memory_hits_and_misses_are_counted(self):
        cache = CompileCache()
        tracer = Tracer()
        with use_tracer(tracer):
            api_compile(request(), cache=cache)
            api_compile(request(), cache=cache)
        assert tracer.counters["cache.misses"] == 1
        assert tracer.counters["cache.stores"] == 1
        assert tracer.counters["cache.memory_hits"] == 1

    def test_disk_hits_are_counted(self, tmp_path):
        warm = CompileCache(directory=tmp_path)
        tracer = Tracer()
        with use_tracer(tracer):
            api_compile(request(), cache=warm)
        cold = CompileCache(directory=tmp_path)
        with use_tracer(tracer):
            api_compile(request(), cache=cold)
        assert tracer.counters["cache.disk_hits"] == 1

    def test_untraced_cache_calls_record_nothing(self):
        cache = CompileCache()
        api_compile(request(), cache=cache)
        api_compile(request(), cache=cache)
        # stats still work without a tracer installed
        assert cache.stats["memory_hits"] == 1


class TestFaultTolerantPaths:
    def test_collect_mode_keeps_one_trace_id(self):
        tracer = Tracer()
        with use_tracer(tracer):
            compile_many(
                [request(seed) for seed in range(2)],
                workers=1,
                cache=False,
                on_error="collect",
            )
        assert {span.trace_id for span in tracer.spans} == {tracer.trace_id}
        assert sum(1 for s in tracer.spans if s.name == "request") == 2

    def test_isolated_worker_spans_stitch_home(self):
        tracer = Tracer()
        with use_tracer(tracer):
            compile_many(
                [request(seed) for seed in range(2)],
                workers=2,
                cache=False,
                timeout=60.0,  # forces one forked child per attempt
            )
        request_spans = [s for s in tracer.spans if s.name == "request"]
        assert len(request_spans) == 2
        assert {span.trace_id for span in tracer.spans} == {tracer.trace_id}

    def test_failed_attempt_spans_carry_the_error(self):
        tracer = Tracer()
        with use_tracer(tracer):
            batch = compile_many(
                [CompileRequest(generate="qft:7", backend=GRID, router="nope", seed=0)],
                workers=1,
                cache=False,
                on_error="collect",
            )
        assert batch.errors
        failed = [s for s in tracer.spans if s.name == "request"]
        assert failed and "error" in failed[0].attributes
