"""Tests for the core tracing primitives (:mod:`repro.obs.trace`)."""

import pickle
import threading

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    current_tracer,
    new_trace_id,
    use_tracer,
)


class TestSpanRecording:
    def test_span_records_name_timing_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", router="qlosure") as span:
            span.set("swaps", 3)
        assert len(tracer.spans) == 1
        recorded = tracer.spans[0]
        assert recorded.name == "work"
        assert recorded.attributes == {"router": "qlosure", "swaps": 3}
        assert recorded.duration >= 0.0
        assert recorded.trace_id == tracer.trace_id

    def test_nested_spans_parent_correctly(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # inner closes (and records) first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_current_returns_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer.span
            with tracer.span("inner") as inner:
                assert tracer.current() is inner.span
            assert tracer.current() is outer.span
        assert tracer.current() is None

    def test_escaping_exception_stamps_error_attribute(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert tracer.spans[0].attributes["error"] == "ValueError"

    def test_span_ids_are_unique_and_pid_prefixed(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = {span.span_id for span in tracer.spans}
        assert len(ids) == 2
        pids = {span.pid for span in tracer.spans}
        assert len(pids) == 1

    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.count("cache.misses")
        tracer.count("cache.misses", 2)
        tracer.count("kernel.cost_evaluations", 10)
        assert tracer.counters == {"cache.misses": 3, "kernel.cost_evaluations": 10}

    def test_span_record_round_trips(self):
        tracer = Tracer()
        with tracer.span("pass", router="greedy"):
            pass
        record = tracer.spans[0].to_record()
        assert record["type"] == "span"
        rebuilt = Span.from_record(record)
        assert rebuilt.name == "pass"
        assert rebuilt.attributes == {"router": "greedy"}
        assert rebuilt.trace_id == tracer.trace_id


class TestTraceIds:
    def test_new_trace_ids_are_unique(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100

    def test_explicit_trace_id_is_used(self):
        tracer = Tracer(trace_id="abc-123")
        with tracer.span("x"):
            pass
        assert tracer.spans[0].trace_id == "abc-123"

    def test_trace_id_and_context_are_mutually_exclusive(self):
        import pytest

        with pytest.raises(ValueError):
            Tracer(trace_id="a", context=TraceContext(trace_id="b"))


class TestPropagation:
    def test_context_names_the_open_span_as_parent(self):
        tracer = Tracer()
        with tracer.span("batch") as batch:
            ctx = tracer.context()
        assert ctx.trace_id == tracer.trace_id
        assert ctx.parent_span_id == batch.span.span_id

    def test_child_tracer_spans_parent_under_the_context(self):
        parent = Tracer()
        with parent.span("batch"):
            ctx = parent.context()
        child = Tracer(context=ctx)
        with child.span("request"):
            pass
        assert child.trace_id == parent.trace_id
        assert child.spans[0].parent_id == ctx.parent_span_id

    def test_context_and_spans_are_picklable(self):
        tracer = Tracer()
        with tracer.span("batch"):
            ctx = tracer.context()
        blob = pickle.dumps((ctx, tracer.spans))
        ctx2, spans2 = pickle.loads(blob)
        assert ctx2 == ctx
        assert spans2[0].name == "batch"

    def test_extend_folds_spans_and_counters(self):
        parent = Tracer()
        child = Tracer(context=parent.context())
        with child.span("request"):
            pass
        child.count("cache.misses", 2)
        parent.extend(child.spans, child.counters)
        assert [span.name for span in parent.spans] == ["request"]
        assert parent.counters == {"cache.misses": 2}


class TestInstallation:
    def test_default_is_the_null_tracer(self):
        assert current_tracer() is NULL_TRACER
        assert current_tracer().enabled is False

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_nests(self):
        a, b = Tracer(), Tracer()
        with use_tracer(a):
            with use_tracer(b):
                assert current_tracer() is b
            assert current_tracer() is a

    def test_installation_is_per_thread(self):
        tracer = Tracer()
        seen = {}

        def observe():
            seen["other"] = current_tracer()

        with use_tracer(tracer):
            thread = threading.Thread(target=observe)
            thread.start()
            thread.join()
        assert seen["other"] is NULL_TRACER

    def test_threads_record_into_one_shared_tracer(self):
        tracer = Tracer()

        def work(n):
            with use_tracer(tracer):
                with tracer.span("job", n=n):
                    pass

        threads = [threading.Thread(target=work, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.spans) == 4
        assert all(span.parent_id is None for span in tracer.spans)


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        null = NullTracer()
        with null.span("anything", x=1) as span:
            span.set("y", 2)
        null.count("c")
        assert null.spans == []
        assert null.counters == {}
        assert null.current() is None

    def test_null_span_is_shared(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
