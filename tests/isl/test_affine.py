"""Tests for affine expressions."""

import pytest

from repro.isl.affine import AffineExpr, const, var


class TestConstruction:
    def test_var_has_unit_coefficient(self):
        expr = var("i")
        assert expr.coefficient("i") == 1
        assert expr.constant == 0

    def test_const_has_no_variables(self):
        expr = const(7)
        assert expr.is_constant()
        assert expr.constant == 7

    def test_zero_coefficients_are_dropped(self):
        expr = AffineExpr({"i": 0, "j": 2})
        assert expr.variables == ("j",)

    def test_coefficients_are_copied(self):
        expr = AffineExpr({"i": 1})
        coeffs = expr.coeffs
        coeffs["i"] = 99
        assert expr.coefficient("i") == 1


class TestArithmetic:
    def test_addition_merges_coefficients(self):
        expr = var("i") + var("j") + 3
        assert expr.coefficient("i") == 1
        assert expr.coefficient("j") == 1
        assert expr.constant == 3

    def test_addition_cancels_terms(self):
        expr = var("i") - var("i")
        assert expr.is_constant()
        assert expr.constant == 0

    def test_subtraction(self):
        expr = 2 * var("i") - var("j") - 5
        assert expr.coefficient("i") == 2
        assert expr.coefficient("j") == -1
        assert expr.constant == -5

    def test_right_subtraction(self):
        expr = 10 - var("i")
        assert expr.coefficient("i") == -1
        assert expr.constant == 10

    def test_scalar_multiplication(self):
        expr = (var("i") + 2) * 3
        assert expr.coefficient("i") == 3
        assert expr.constant == 6

    def test_negation(self):
        expr = -(var("i") - 4)
        assert expr.coefficient("i") == -1
        assert expr.constant == 4

    def test_multiplication_by_non_integer_rejected(self):
        with pytest.raises(TypeError):
            var("i") * 1.5

    def test_adding_incompatible_type_rejected(self):
        with pytest.raises(TypeError):
            var("i") + "j"


class TestEvaluation:
    def test_evaluate(self):
        expr = 2 * var("i") + 3 * var("j") + 1
        assert expr.evaluate({"i": 2, "j": 5}) == 20

    def test_evaluate_missing_binding_raises(self):
        with pytest.raises(KeyError):
            var("i").evaluate({"j": 1})

    def test_substitute_with_expression(self):
        expr = 2 * var("i") + 1
        substituted = expr.substitute({"i": var("j") + 3})
        assert substituted.coefficient("j") == 2
        assert substituted.constant == 7

    def test_substitute_with_integer(self):
        expr = var("i") + var("j")
        substituted = expr.substitute({"i": 4})
        assert substituted.constant == 4
        assert substituted.coefficient("j") == 1

    def test_rename(self):
        expr = var("i") + 2 * var("j")
        renamed = expr.rename({"i": "x"})
        assert renamed.coefficient("x") == 1
        assert renamed.coefficient("j") == 2


class TestEquality:
    def test_equality_ignores_ordering(self):
        a = AffineExpr({"i": 1, "j": 2}, 3)
        b = AffineExpr({"j": 2, "i": 1}, 3)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_constant(self):
        assert AffineExpr({"i": 1}, 1) != AffineExpr({"i": 1}, 2)

    def test_repr_is_readable(self):
        assert repr(2 * var("i") - 1) == "2*i - 1"
        assert repr(const(0)) == "0"
