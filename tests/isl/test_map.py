"""Tests for basic maps and maps (integer relations)."""

import pytest

from repro.isl.basic_map import BasicMap
from repro.isl.basic_set import BasicSet
from repro.isl.map_ import Map
from repro.isl.set_ import Set
from repro.isl.space import Space


MAP_SPACE = Space.map_space(("i",), ("j",))
SET_SPACE = Space.set_space(("i",))


def translation_map(offset: int, lo: int, hi: int) -> Map:
    domain = BasicSet.box(SET_SPACE, {"i": (lo, hi)})
    return Map.from_basic(BasicMap.translation(MAP_SPACE, (offset,), domain))


class TestBasicMap:
    def test_translation_pairs(self):
        relation = translation_map(2, 0, 3)
        assert sorted(relation.pairs()) == [
            ((0,), (2,)), ((1,), (3,)), ((2,), (4,)), ((3,), (5,)),
        ]

    def test_from_pair(self):
        basic = BasicMap.from_pair(MAP_SPACE, (1,), (5,))
        assert basic.contains_pair((1,), (5,))
        assert not basic.contains_pair((1,), (4,))
        assert basic.count() == 1

    def test_translation_requires_matching_arity(self):
        with pytest.raises(ValueError):
            BasicMap.translation(MAP_SPACE, (1, 2))

    def test_as_translation_detects_offsets(self):
        basic = BasicMap.translation(MAP_SPACE, (3,), BasicSet.box(SET_SPACE, {"i": (0, 5)}))
        assert basic.as_translation() == (3,)

    def test_as_translation_rejects_non_translation(self):
        basic = BasicMap.from_pair(MAP_SPACE, (1,), (5,))
        # A single pinned pair is not a uniform translation of the whole line.
        assert basic.as_translation() is None

    def test_reverse(self):
        basic = BasicMap.translation(MAP_SPACE, (1,), BasicSet.box(SET_SPACE, {"i": (0, 2)}))
        assert sorted(basic.reverse().pairs()) == [((1,), (0,)), ((2,), (1,)), ((3,), (2,))]

    def test_intersect_domain_and_range(self):
        basic = BasicMap.translation(MAP_SPACE, (1,), BasicSet.box(SET_SPACE, {"i": (0, 9)}))
        domain = BasicSet.box(SET_SPACE, {"i": (0, 2)})
        rng = BasicSet.box(Space.set_space(("j",)), {"j": (2, 10)})
        restricted = basic.intersect_domain(domain).intersect_range(rng)
        assert sorted(restricted.pairs()) == [((1,), (2,)), ((2,), (3,))]

    def test_set_space_rejected(self):
        with pytest.raises(ValueError):
            BasicMap(SET_SPACE)


class TestMap:
    def test_from_pairs_and_contains(self):
        relation = Map.from_pairs(MAP_SPACE, [((0,), (1,)), ((1,), (2,))])
        assert relation.contains_pair((0,), (1,))
        assert not relation.contains_pair((2,), (3,))
        assert relation.count() == 2

    def test_domain_and_range(self):
        relation = Map.from_pairs(MAP_SPACE, [((0,), (5,)), ((1,), (5,))])
        assert relation.domain().count() == 2
        assert relation.range().count() == 1

    def test_union(self):
        a = Map.from_pairs(MAP_SPACE, [((0,), (1,))])
        b = Map.from_pairs(MAP_SPACE, [((1,), (2,))])
        assert a.union(b).count() == 2

    def test_intersect(self):
        a = translation_map(1, 0, 5)
        b = Map.from_pairs(MAP_SPACE, [((0,), (1,)), ((9,), (10,))])
        assert sorted(a.intersect(b).pairs()) == [((0,), (1,))]

    def test_subtract(self):
        a = translation_map(1, 0, 3)
        b = Map.from_pairs(MAP_SPACE, [((0,), (1,))])
        assert a.subtract(b).count() == 3

    def test_reverse_explicit(self):
        relation = Map.from_pairs(MAP_SPACE, [((0,), (3,))])
        assert sorted(relation.reverse().pairs()) == [((3,), (0,))]

    def test_compose(self):
        first = Map.from_pairs(MAP_SPACE, [((0,), (1,)), ((1,), (2,))])
        second = Map.from_pairs(MAP_SPACE, [((1,), (10,)), ((2,), (20,))])
        composed = first.compose(second)
        assert sorted(composed.pairs()) == [((0,), (10,)), ((1,), (20,))]

    def test_apply_to_set(self):
        relation = translation_map(2, 0, 4)
        image = relation.apply(Set.from_points(SET_SPACE, [(0,), (1,)]))
        assert sorted(image.points()) == [(2,), (3,)]

    def test_identity(self):
        domain = Set.box(SET_SPACE, {"i": (0, 3)})
        identity = Map.identity(MAP_SPACE, domain)
        assert sorted(identity.pairs()) == [((i,), (i,)) for i in range(4)]

    def test_intersect_domain_range_explicit(self):
        relation = Map.from_pairs(MAP_SPACE, [((0,), (1,)), ((5,), (6,))])
        domain = Set.from_points(SET_SPACE, [(0,)])
        assert relation.intersect_domain(domain).count() == 1
        rng = Set.from_points(Space.set_space(("j",)), [(6,)])
        assert relation.intersect_range(rng).count() == 1

    def test_successors(self):
        relation = Map.from_pairs(MAP_SPACE, [((0,), (1,)), ((0,), (2,)), ((1,), (2,))])
        assert relation.successors((0,)) == frozenset({(1,), (2,)})

    def test_as_adjacency(self):
        relation = Map.from_pairs(MAP_SPACE, [((0,), (1,)), ((0,), (2,))])
        adjacency = relation.as_adjacency()
        assert adjacency[(0,)] == {(1,), (2,)}

    def test_equality_across_representations(self):
        explicit = Map.from_pairs(MAP_SPACE, [((i,), (i + 1,)) for i in range(4)])
        symbolic = translation_map(1, 0, 3)
        assert explicit.is_equal(symbolic)

    def test_incompatible_spaces_rejected(self):
        other = Map.empty(Space.map_space(("a", "b"), ("c",)))
        with pytest.raises(ValueError):
            Map.empty(MAP_SPACE).union(other)

    def test_compose_arity_mismatch_rejected(self):
        other = Map.empty(Space.map_space(("a", "b"), ("c",)))
        with pytest.raises(ValueError):
            Map.empty(MAP_SPACE).compose(other)
