"""Tests for transitive closure and reachability counting."""

import pytest

from repro.isl.basic_map import BasicMap
from repro.isl.basic_set import BasicSet
from repro.isl.closure import power, reachable_counts, transitive_closure
from repro.isl.map_ import Map
from repro.isl.space import Space


MAP_SPACE = Space.map_space(("i",), ("j",))
SET_SPACE = Space.set_space(("i",))


def chain_map(length: int) -> Map:
    """The successor relation on a chain 0 -> 1 -> ... -> length."""
    domain = BasicSet.box(SET_SPACE, {"i": (0, length - 1)})
    return Map.from_basic(BasicMap.translation(MAP_SPACE, (1,), domain))


class TestPower:
    def test_square_of_chain(self):
        squared = power(chain_map(4), 2)
        assert sorted(squared.pairs()) == [
            ((0,), (2,)), ((1,), (3,)), ((2,), (4,)),
        ]

    def test_power_one_is_identity_operation(self):
        relation = chain_map(3)
        assert power(relation, 1).pair_set() == relation.pair_set()

    def test_power_requires_positive_exponent(self):
        with pytest.raises(ValueError):
            power(chain_map(3), 0)


class TestTransitiveClosure:
    def test_chain_closure_is_strict_order(self):
        closure = transitive_closure(chain_map(4))
        expected = {((i,), (j,)) for i in range(5) for j in range(5) if i < j}
        assert closure.pair_set() == expected

    def test_symbolic_path_matches_explicit(self):
        """The symbolic fast path and the explicit fixpoint must agree."""
        symbolic_input = chain_map(6)
        explicit_input = Map.from_pairs(MAP_SPACE, symbolic_input.pairs())
        assert transitive_closure(symbolic_input).pair_set() == transitive_closure(
            explicit_input
        ).pair_set()

    def test_branching_dag(self):
        relation = Map.from_pairs(
            MAP_SPACE, [((0,), (1,)), ((0,), (2,)), ((1,), (3,)), ((2,), (3,))]
        )
        closure = transitive_closure(relation)
        assert closure.contains_pair((0,), (3,))
        assert closure.count() == 5

    def test_cycle_closure(self):
        relation = Map.from_pairs(MAP_SPACE, [((0,), (1,)), ((1,), (0,))])
        closure = transitive_closure(relation)
        # Every node reaches both nodes (including itself through the cycle).
        assert closure.pair_set() == {
            ((0,), (0,)), ((0,), (1,)), ((1,), (0,)), ((1,), (1,)),
        }

    def test_empty_relation(self):
        assert transitive_closure(Map.empty(MAP_SPACE)).is_empty()

    def test_exact_only_flag(self):
        with pytest.raises(ValueError):
            transitive_closure(chain_map(3), exact_only=False)

    def test_closure_is_idempotent(self):
        relation = Map.from_pairs(
            MAP_SPACE, [((0,), (1,)), ((1,), (2,)), ((2,), (4,)), ((1,), (4,))]
        )
        once = transitive_closure(relation)
        twice = transitive_closure(once)
        assert once.pair_set() == twice.pair_set()


class TestReachableCounts:
    def test_chain_counts(self):
        counts = reachable_counts(chain_map(4))
        assert counts[(0,)] == 4
        assert counts[(3,)] == 1
        assert counts[(4,)] == 0

    def test_counts_match_closure_cardinalities(self):
        relation = Map.from_pairs(
            MAP_SPACE,
            [((0,), (1,)), ((0,), (2,)), ((1,), (3,)), ((2,), (3,)), ((3,), (5,))],
        )
        closure = transitive_closure(relation)
        counts = reachable_counts(relation)
        for source in relation.domain().points():
            assert counts[source] == len(closure.successors(source))

    def test_cyclic_counts(self):
        relation = Map.from_pairs(MAP_SPACE, [((0,), (1,)), ((1,), (0,)), ((1,), (2,))])
        counts = reachable_counts(relation)
        assert counts[(0,)] == 3  # reaches 0, 1 and 2
        assert counts[(1,)] == 3
