"""Tests for affine constraints."""

import pytest

from repro.isl.affine import var
from repro.isl.constraint import Constraint, eq, eq_zero, ge, ge_zero, le


class TestSatisfaction:
    def test_equality_satisfied(self):
        constraint = eq_zero(var("i") - 3)
        assert constraint.satisfied_by({"i": 3})
        assert not constraint.satisfied_by({"i": 4})

    def test_inequality_satisfied(self):
        constraint = ge_zero(var("i") - 2)
        assert constraint.satisfied_by({"i": 2})
        assert constraint.satisfied_by({"i": 5})
        assert not constraint.satisfied_by({"i": 1})

    def test_le_helper(self):
        constraint = le(var("i"), 4)
        assert constraint.satisfied_by({"i": 4})
        assert not constraint.satisfied_by({"i": 5})

    def test_ge_helper(self):
        constraint = ge(var("i"), var("j"))
        assert constraint.satisfied_by({"i": 3, "j": 3})
        assert not constraint.satisfied_by({"i": 2, "j": 3})

    def test_eq_helper(self):
        constraint = eq(var("i"), var("j") + 1)
        assert constraint.satisfied_by({"i": 4, "j": 3})
        assert not constraint.satisfied_by({"i": 4, "j": 4})


class TestTriviality:
    def test_trivially_true_inequality(self):
        assert ge_zero(var("i") * 0 + 5).is_trivially_true()

    def test_trivially_false_inequality(self):
        assert ge_zero(var("i") * 0 - 1).is_trivially_false()

    def test_trivially_true_equality(self):
        assert eq_zero(var("i") * 0).is_trivially_true()

    def test_trivially_false_equality(self):
        assert eq_zero(var("i") * 0 + 2).is_trivially_false()

    def test_non_constant_not_trivial(self):
        constraint = ge_zero(var("i"))
        assert not constraint.is_trivially_true()
        assert not constraint.is_trivially_false()


class TestTransformation:
    def test_rename(self):
        constraint = ge_zero(var("i") - 1).rename({"i": "k"})
        assert constraint.variables == ("k",)
        assert constraint.satisfied_by({"k": 1})

    def test_substitute(self):
        constraint = ge_zero(var("i") - 1).substitute({"i": var("j") + 5})
        assert constraint.satisfied_by({"j": 0})
        assert constraint.satisfied_by({"j": -4})
        assert not constraint.satisfied_by({"j": -5})

    def test_requires_affine_expr(self):
        with pytest.raises(TypeError):
            Constraint("i >= 0", is_equality=False)

    def test_equality_and_hash(self):
        a = ge_zero(var("i") - 1)
        b = ge_zero(var("i") - 1)
        assert a == b and hash(a) == hash(b)
        assert a != eq_zero(var("i") - 1)

    def test_repr(self):
        assert repr(ge_zero(var("i"))) == "i >= 0"
        assert repr(eq_zero(var("i") - 1)) == "i - 1 = 0"
