"""Tests for integer sets (unions of basic sets)."""

import pytest

from repro.isl.basic_set import BasicSet
from repro.isl.set_ import Set
from repro.isl.space import Space


SPACE = Space.set_space(("i",))
SPACE_2D = Space.set_space(("i", "j"))


class TestConstruction:
    def test_empty_set(self):
        empty = Set.empty(SPACE)
        assert empty.is_empty()
        assert empty.count() == 0

    def test_from_points_deduplicates(self):
        points = Set.from_points(SPACE, [(1,), (2,), (1,)])
        assert points.count() == 2

    def test_box(self):
        box = Set.box(SPACE_2D, {"i": (0, 1), "j": (0, 1)})
        assert box.count() == 4

    def test_from_basic(self):
        basic = BasicSet.box(SPACE, {"i": (0, 4)})
        assert Set.from_basic(basic).count() == 5

    def test_piece_space_mismatch_rejected(self):
        basic = BasicSet.box(SPACE_2D, {"i": (0, 1), "j": (0, 1)})
        with pytest.raises(ValueError):
            Set(SPACE, [basic])


class TestAlgebra:
    def test_union_counts_distinct_points(self):
        a = Set.box(SPACE, {"i": (0, 4)})
        b = Set.box(SPACE, {"i": (3, 7)})
        assert a.union(b).count() == 8

    def test_intersection(self):
        a = Set.box(SPACE, {"i": (0, 4)})
        b = Set.box(SPACE, {"i": (3, 7)})
        assert sorted(a.intersect(b).points()) == [(3,), (4,)]

    def test_subtract(self):
        a = Set.box(SPACE, {"i": (0, 5)})
        b = Set.box(SPACE, {"i": (2, 3)})
        assert sorted(a.subtract(b).points()) == [(0,), (1,), (4,), (5,)]

    def test_subset(self):
        small = Set.box(SPACE, {"i": (1, 2)})
        big = Set.box(SPACE, {"i": (0, 5)})
        assert small.is_subset(big)
        assert not big.is_subset(small)

    def test_equality_across_representations(self):
        explicit = Set.from_points(SPACE, [(0,), (1,), (2,)])
        symbolic = Set.box(SPACE, {"i": (0, 2)})
        assert explicit.is_equal(symbolic)
        assert explicit == symbolic

    def test_coalesce_drops_empty_pieces(self):
        empty_piece = BasicSet.box(SPACE, {"i": (4, 2)})
        full_piece = BasicSet.box(SPACE, {"i": (0, 1)})
        combined = Set(SPACE, [empty_piece, full_piece]).coalesce()
        assert len(combined.pieces) == 1
        assert combined.count() == 2

    def test_incompatible_spaces_rejected(self):
        with pytest.raises(ValueError):
            Set.empty(SPACE).union(Set.empty(SPACE_2D))

    def test_contains(self):
        box = Set.box(SPACE, {"i": (0, 3)})
        assert box.contains((2,))
        assert not box.contains((9,))
