"""Tests for tuple spaces."""

import pytest

from repro.isl.space import Space


class TestSetSpace:
    def test_basic_properties(self):
        space = Space.set_space(("i", "j"), name="S")
        assert space.in_dims == ("i", "j")
        assert space.out_dims == ()
        assert not space.is_map
        assert space.n_in == 2 and space.n_out == 0
        assert space.name == "S"

    def test_duplicate_dims_rejected(self):
        with pytest.raises(ValueError):
            Space.set_space(("i", "i"))

    def test_bind(self):
        space = Space.set_space(("i", "j"))
        assert space.bind((3, 4)) == {"i": 3, "j": 4}

    def test_bind_wrong_arity(self):
        with pytest.raises(ValueError):
            Space.set_space(("i",)).bind((1, 2))

    def test_range_space_requires_map(self):
        with pytest.raises(ValueError):
            Space.set_space(("i",)).range_space()

    def test_reversed_requires_map(self):
        with pytest.raises(ValueError):
            Space.set_space(("i",)).reversed()


class TestMapSpace:
    def test_basic_properties(self):
        space = Space.map_space(("i",), ("j", "k"))
        assert space.is_map
        assert space.all_dims == ("i", "j", "k")
        assert space.n_in == 1 and space.n_out == 2

    def test_domain_and_range_spaces(self):
        space = Space.map_space(("i",), ("j",))
        assert space.domain_space().in_dims == ("i",)
        assert space.range_space().in_dims == ("j",)

    def test_reversed(self):
        space = Space.map_space(("i",), ("j",)).reversed()
        assert space.in_dims == ("j",)
        assert space.out_dims == ("i",)

    def test_split_point(self):
        space = Space.map_space(("i",), ("j", "k"))
        assert space.split_point((1, 2, 3)) == ((1,), (2, 3))

    def test_duplicate_across_tuples_rejected(self):
        with pytest.raises(ValueError):
            Space.map_space(("i",), ("i",))

    def test_compatible_with(self):
        a = Space.map_space(("i",), ("j",))
        b = Space.map_space(("x",), ("y",))
        c = Space.map_space(("x", "y"), ("z",))
        assert a.compatible_with(b)
        assert not a.compatible_with(c)

    def test_with_name(self):
        space = Space.set_space(("i",)).with_name("T")
        assert space.name == "T"

    def test_equality_and_hash(self):
        a = Space.map_space(("i",), ("j",))
        b = Space.map_space(("i",), ("j",))
        assert a == b and hash(a) == hash(b)
        assert a != Space.map_space(("i",), ("k",))
