"""Tests for point counting (the Barvinok stand-in)."""

import pytest

from repro.isl.affine import var
from repro.isl.basic_map import BasicMap
from repro.isl.basic_set import BasicSet
from repro.isl.constraint import ge, le
from repro.isl.counting import card, card_map_range_per_domain
from repro.isl.map_ import Map
from repro.isl.set_ import Set
from repro.isl.space import Space


SPACE_1D = Space.set_space(("i",))
SPACE_2D = Space.set_space(("i", "j"))
MAP_SPACE = Space.map_space(("i",), ("j",))


class TestCard:
    def test_box_closed_form(self):
        box = BasicSet.box(SPACE_2D, {"i": (0, 9), "j": (0, 4)})
        assert card(box) == 50

    def test_box_with_empty_dimension(self):
        box = BasicSet.box(SPACE_2D, {"i": (5, 4), "j": (0, 4)})
        assert card(box) == 0

    def test_non_box_falls_back_to_enumeration(self):
        triangle = BasicSet(
            SPACE_2D,
            [ge(var("i"), 0), le(var("i"), 3), ge(var("j"), var("i")), le(var("j"), 3)],
        )
        assert card(triangle) == 10

    def test_set_cardinality(self):
        union = Set.box(SPACE_1D, {"i": (0, 4)}).union(Set.box(SPACE_1D, {"i": (3, 6)}))
        assert card(union) == 7

    def test_map_cardinality(self):
        relation = Map.from_pairs(MAP_SPACE, [((0,), (1,)), ((1,), (2,)), ((1,), (3,))])
        assert card(relation) == 3

    def test_singleton_equality_box(self):
        point = BasicSet.from_point(SPACE_2D, (2, 3))
        assert card(point) == 1

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            card([1, 2, 3])


class TestPerDomainCounts:
    def test_counts_grouped_by_domain_point(self):
        relation = Map.from_pairs(
            MAP_SPACE, [((0,), (1,)), ((0,), (2,)), ((1,), (2,)), ((2,), (3,))]
        )
        counts = card_map_range_per_domain(relation)
        assert counts == {(0,): 2, (1,): 1, (2,): 1}

    def test_counts_of_translation_map(self):
        domain = BasicSet.box(SPACE_1D, {"i": (0, 4)})
        relation = Map.from_basic(BasicMap.translation(MAP_SPACE, (1,), domain))
        counts = card_map_range_per_domain(relation)
        assert all(count == 1 for count in counts.values())
        assert len(counts) == 5
