"""Tests for basic sets (conjunctions of affine constraints)."""

import pytest

from repro.isl.affine import var
from repro.isl.basic_set import BasicSet, UnboundedSetError
from repro.isl.constraint import eq, ge, ge_zero, le
from repro.isl.space import Space


SPACE_1D = Space.set_space(("i",))
SPACE_2D = Space.set_space(("i", "j"))


class TestConstruction:
    def test_box_membership(self):
        box = BasicSet.box(SPACE_2D, {"i": (0, 2), "j": (1, 3)})
        assert box.contains((0, 1))
        assert box.contains((2, 3))
        assert not box.contains((3, 1))
        assert not box.contains((0, 0))

    def test_from_point(self):
        point = BasicSet.from_point(SPACE_2D, (4, 5))
        assert point.contains((4, 5))
        assert not point.contains((4, 6))
        assert point.count() == 1

    def test_universe_contains_everything(self):
        universe = BasicSet.universe(SPACE_1D)
        assert universe.contains((0,))
        assert universe.contains((-100,))

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ValueError):
            BasicSet(SPACE_1D, [ge_zero(var("x"))])

    def test_trivially_true_constraints_dropped(self):
        box = BasicSet(SPACE_1D, [ge_zero(var("i") * 0 + 1), ge(var("i"), 0), le(var("i"), 1)])
        assert len(box.constraints) == 2


class TestEnumeration:
    def test_box_enumeration(self):
        box = BasicSet.box(SPACE_2D, {"i": (0, 1), "j": (0, 2)})
        assert sorted(box.points()) == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]

    def test_triangular_domain(self):
        triangle = BasicSet(
            SPACE_2D,
            [ge(var("i"), 0), le(var("i"), 3), ge(var("j"), var("i")), le(var("j"), 3)],
        )
        points = set(triangle.points())
        assert (0, 3) in points and (3, 3) in points
        assert (2, 1) not in points
        assert len(points) == 10

    def test_equality_constraint_pins_dimension(self):
        diag = BasicSet(
            SPACE_2D, [ge(var("i"), 0), le(var("i"), 4), eq(var("j"), var("i"))]
        )
        assert sorted(diag.points()) == [(i, i) for i in range(5)]

    def test_unbounded_raises(self):
        unbounded = BasicSet(SPACE_1D, [ge(var("i"), 0)])
        with pytest.raises(UnboundedSetError):
            list(unbounded.points())

    def test_count_matches_enumeration(self):
        box = BasicSet.box(SPACE_2D, {"i": (0, 3), "j": (0, 4)})
        assert box.count() == 20

    def test_infeasible_equality_is_empty(self):
        infeasible = BasicSet(
            SPACE_1D, [eq(var("i") * 2, 3), ge(var("i"), 0), le(var("i"), 10)]
        )
        assert infeasible.is_empty()

    def test_empty_box(self):
        empty = BasicSet.box(SPACE_1D, {"i": (3, 1)})
        assert empty.is_empty()
        assert empty.count() == 0


class TestAlgebra:
    def test_intersection(self):
        a = BasicSet.box(SPACE_1D, {"i": (0, 10)})
        b = BasicSet.box(SPACE_1D, {"i": (5, 15)})
        both = a.intersect(b)
        assert sorted(both.points()) == [(i,) for i in range(5, 11)]

    def test_intersection_space_mismatch(self):
        with pytest.raises(ValueError):
            BasicSet.universe(SPACE_1D).intersect(BasicSet.universe(SPACE_2D))

    def test_add_constraints(self):
        box = BasicSet.box(SPACE_1D, {"i": (0, 9)})
        constrained = box.add_constraints([ge(var("i"), 7)])
        assert constrained.count() == 3

    def test_rename_dims(self):
        box = BasicSet.box(SPACE_1D, {"i": (0, 2)})
        renamed = box.rename_dims({"i": "k"}, Space.set_space(("k",)))
        assert renamed.contains((2,))
        assert renamed.count() == 3

    def test_equality_and_hash(self):
        a = BasicSet.box(SPACE_1D, {"i": (0, 2)})
        b = BasicSet.box(SPACE_1D, {"i": (0, 2)})
        assert a == b and hash(a) == hash(b)
