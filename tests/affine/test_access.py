"""Tests for affine qubit access relations."""

from repro.affine.access import AffineAccess
from repro.isl.counting import card


class TestFit:
    def test_single_value(self):
        access = AffineAccess.fit([7])
        assert access == AffineAccess(0, 7)
        assert access.is_constant()

    def test_two_values_define_progression(self):
        assert AffineAccess.fit([3, 5]) == AffineAccess(2, 3)

    def test_uniform_progression(self):
        assert AffineAccess.fit([1, 3, 5, 7]) == AffineAccess(2, 1)

    def test_identity_progression(self):
        assert AffineAccess.fit([0, 1, 2, 3]) == AffineAccess(1, 0)

    def test_non_affine_rejected(self):
        assert AffineAccess.fit([0, 1, 3]) is None

    def test_empty_rejected(self):
        assert AffineAccess.fit([]) is None

    def test_negative_step(self):
        assert AffineAccess.fit([9, 6, 3]) == AffineAccess(-3, 9)


class TestEvaluation:
    def test_qubit_at(self):
        access = AffineAccess(2, 1)
        assert [access.qubit_at(i) for i in range(4)] == [1, 3, 5, 7]

    def test_paper_example_accesses(self):
        """The QRANE example in Sec. III-C: q1 = [i]->[i], q2 = [i]->[2i+1]."""
        first_operands = [0, 1, 2, 3]
        second_operands = [1, 3, 5, 7]
        assert AffineAccess.fit(first_operands) == AffineAccess(1, 0)
        assert AffineAccess.fit(second_operands) == AffineAccess(2, 1)

    def test_extends(self):
        access = AffineAccess(2, 1)
        assert access.extends([1, 3], 5)
        assert not access.extends([1, 3], 6)

    def test_to_map_enumerates_accesses(self):
        access = AffineAccess(2, 1)
        relation = access.to_map(trip_count=4)
        assert sorted(relation.pairs()) == [
            ((0,), (1,)), ((1,), (3,)), ((2,), (5,)), ((3,), (7,)),
        ]
        assert card(relation) == 4

    def test_repr(self):
        assert repr(AffineAccess(1, 0)) == "{[i] -> [i]}"
        assert repr(AffineAccess(0, 4)) == "{[i] -> [4]}"
        assert repr(AffineAccess(2, 1)) == "{[i] -> [2i + 1]}"
