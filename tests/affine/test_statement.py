"""Tests for macro-gates (lifted statements)."""

import pytest

from repro.affine.access import AffineAccess
from repro.affine.program import AffineProgram
from repro.affine.statement import MacroGate


def chain_macro(trip_count: int = 4) -> MacroGate:
    """The macro-gate of a CNOT chain: CX(i, i+1) for i in [0, trip_count)."""
    return MacroGate(
        name="S0",
        gate_name="cx",
        accesses=(AffineAccess(1, 0), AffineAccess(1, 1)),
        trip_count=trip_count,
        start_time=0,
        time_stride=1,
    )


class TestInstances:
    def test_instance_qubits(self):
        macro = chain_macro()
        assert macro.instance_qubits(0) == (0, 1)
        assert macro.instance_qubits(3) == (3, 4)

    def test_instance_out_of_range(self):
        with pytest.raises(IndexError):
            chain_macro().instance_qubits(4)

    def test_instance_time_uses_stride(self):
        macro = MacroGate(
            name="S1",
            gate_name="h",
            accesses=(AffineAccess(1, 0),),
            trip_count=3,
            start_time=5,
            time_stride=2,
        )
        assert [macro.instance_time(i) for i in range(3)] == [5, 7, 9]

    def test_instance_gate_carries_params(self):
        macro = MacroGate(
            name="S2",
            gate_name="rz",
            accesses=(AffineAccess(0, 2),),
            trip_count=2,
            start_time=0,
            time_stride=1,
            params=(0.25,),
        )
        gate = macro.instance_gate(1)
        assert gate.name == "rz" and gate.qubits == (2,) and gate.params == (0.25,)

    def test_gates_and_len(self):
        macro = chain_macro(5)
        assert len(macro) == 5
        assert len(macro.gates()) == 5


class TestPolyhedralViews:
    def test_iteration_domain(self):
        domain = chain_macro(6).iteration_domain()
        assert domain.count() == 6

    def test_access_maps_arity(self):
        maps = chain_macro(3).access_maps()
        assert len(maps) == 2
        assert maps[0].count() == 3

    def test_schedule_is_injective(self):
        schedule = chain_macro(4).schedule_map()
        times = [pair[1] for pair in schedule.pairs()]
        assert len(set(times)) == 4


class TestAffineProgram:
    def test_program_statistics(self):
        program = AffineProgram(5, [chain_macro(4)])
        assert program.num_gate_instances == 4
        assert program.macro_gate_count() == 1
        assert program.compression_ratio() == 4.0

    def test_empty_program_ratio(self):
        assert AffineProgram(2).compression_ratio() == 1.0

    def test_to_circuit_orders_by_time(self):
        early = chain_macro(2)
        late = MacroGate(
            name="S1",
            gate_name="h",
            accesses=(AffineAccess(0, 0),),
            trip_count=1,
            start_time=2,
            time_stride=1,
        )
        program = AffineProgram(3, [late, early])
        circuit = program.to_circuit()
        assert [g.name for g in circuit] == ["cx", "cx", "h"]
