"""Tests for the dependence analysis (use map, Rdep, closure, omega weights)."""

import pytest

from repro.affine.dependence import (
    DependenceAnalysis,
    dependence_relation,
    dependence_weights,
    use_map,
)
from repro.benchgen.qasmbench import ghz_circuit, qft_circuit
from repro.benchgen.random_circuits import random_circuit
from repro.circuit.circuit import QuantumCircuit
from repro.isl.closure import transitive_closure


class TestUseMap:
    def test_maps_time_to_qubit_pairs(self, paper_example_circuit):
        relation = use_map(paper_example_circuit)
        assert relation.count() == 6
        assert relation.contains_pair((0,), (0, 1))
        assert relation.contains_pair((3,), (3, 5))

    def test_single_qubit_gates_duplicate_operand(self):
        circuit = QuantumCircuit(2)
        circuit.h(1)
        relation = use_map(circuit)
        assert relation.contains_pair((0,), (1, 1))


class TestDependenceRelation:
    def test_immediate_relation_of_chain(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        relation = dependence_relation(circuit)
        assert relation.count() == 1
        ((src, dst),) = list(relation.pairs())
        assert src[0] == 0 and dst[0] == 1

    def test_full_relation_matches_paper_definition(self, paper_example_circuit):
        full = dependence_relation(paper_example_circuit, immediate_only=False)
        # Every pair of gates sharing a qubit, ordered by time.
        assert full.contains_pair((0, 0, 1), (2, 1, 2))
        assert full.contains_pair((0, 0, 1), (5, 1, 5))  # transitive sharing pair
        assert not full.contains_pair((2, 1, 2), (0, 0, 1))

    def test_closures_of_immediate_and_full_agree(self, paper_example_circuit):
        immediate = dependence_relation(paper_example_circuit, immediate_only=True)
        full = dependence_relation(paper_example_circuit, immediate_only=False)
        assert transitive_closure(immediate).pair_set() == transitive_closure(full).pair_set()

    def test_independent_gates_have_no_dependences(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        assert dependence_relation(circuit).is_empty()


class TestWeights:
    def test_chain_weights_decrease(self):
        circuit = ghz_circuit(6)
        weights = dependence_weights(circuit)
        values = [weights[t] for t in sorted(weights)]
        assert values == sorted(values, reverse=True)
        assert values[-1] == 0

    def test_isl_and_dag_paths_agree(self):
        circuit = random_circuit(6, 40, seed=3)
        isl_weights = dependence_weights(circuit, method="isl")
        dag_weights = dependence_weights(circuit, method="dag")
        assert isl_weights == dag_weights

    def test_isl_and_dag_agree_on_qft(self):
        circuit = qft_circuit(5)
        assert dependence_weights(circuit, method="isl") == dependence_weights(
            circuit, method="dag"
        )

    def test_auto_switches_to_dag_for_large_circuits(self):
        circuit = random_circuit(8, 120, seed=1)
        weights = dependence_weights(circuit, method="auto", isl_gate_limit=50)
        assert len(weights) == 120

    def test_paper_example_weights(self, paper_example_circuit):
        weights = dependence_weights(paper_example_circuit)
        # G0 -> {G2, G4, G5}, G1 -> {G2, G3, G4, G5}, last gates have none.
        assert weights[0] == 3
        assert weights[1] == 4
        assert weights[4] == 0 and weights[5] == 0


class TestDependenceAnalysis:
    def test_weights_keyed_by_gate_index(self, paper_example_circuit):
        analysis = DependenceAnalysis(paper_example_circuit)
        assert analysis.weight(0) == 3
        assert analysis.weight(5) == 0
        assert len(analysis.weights()) == 6

    def test_critical_gates_ranked_by_weight(self, paper_example_circuit):
        analysis = DependenceAnalysis(paper_example_circuit)
        assert analysis.critical_gates(top=1) == [1]

    def test_levels_match_dag(self, paper_example_circuit):
        analysis = DependenceAnalysis(paper_example_circuit)
        levels = analysis.levels()
        assert levels[0] == 0 and levels[2] == 1 and levels[5] == 2

    def test_closure_materialisation(self, paper_example_circuit):
        analysis = DependenceAnalysis(paper_example_circuit, materialize_closure=True)
        assert analysis.closure is not None
        assert analysis.closure.count() >= 6

    def test_closure_not_materialised_by_default(self, paper_example_circuit):
        assert DependenceAnalysis(paper_example_circuit).closure is None
