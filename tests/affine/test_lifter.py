"""Tests for QRANE-style circuit lifting."""

from repro.affine.access import AffineAccess
from repro.affine.lifter import lift_circuit, lifting_report
from repro.benchgen.qasmbench import ghz_circuit, qft_circuit
from repro.circuit.circuit import QuantumCircuit


class TestGrouping:
    def test_qrane_paper_trace(self):
        """The QASM trace of Sec. III-C lifts to a single macro-gate."""
        circuit = QuantumCircuit(8)
        circuit.cx(0, 1)
        circuit.cx(1, 3)
        circuit.cx(2, 5)
        circuit.cx(3, 7)
        program = lift_circuit(circuit)
        assert program.macro_gate_count() == 1
        statement = program.statements[0]
        assert statement.trip_count == 4
        assert statement.accesses == (AffineAccess(1, 0), AffineAccess(2, 1))

    def test_ghz_chain_is_one_macro_gate_plus_hadamard(self):
        program = lift_circuit(ghz_circuit(10))
        assert program.macro_gate_count() == 2
        names = [s.gate_name for s in program.statements]
        assert names == ["h", "cx"]
        assert program.statements[1].trip_count == 9

    def test_gate_name_change_breaks_run(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cz(2, 3)
        program = lift_circuit(circuit)
        assert program.macro_gate_count() == 2

    def test_parameter_change_breaks_run(self):
        circuit = QuantumCircuit(3)
        circuit.rz(0.5, 0)
        circuit.rz(0.5, 1)
        circuit.rz(0.7, 2)
        program = lift_circuit(circuit)
        assert program.macro_gate_count() == 2

    def test_non_affine_operand_breaks_run(self):
        circuit = QuantumCircuit(8)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(2, 3)
        circuit.cx(5, 7)  # breaks both progressions
        program = lift_circuit(circuit)
        assert program.macro_gate_count() == 2
        assert program.statements[0].trip_count == 3

    def test_singletons_are_kept(self, paper_example_circuit):
        program = lift_circuit(paper_example_circuit)
        assert program.num_gate_instances == len(paper_example_circuit)

    def test_barriers_are_skipped(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.barrier()
        circuit.cx(1, 2)
        program = lift_circuit(circuit)
        assert program.num_gate_instances == 2


class TestReconstruction:
    def test_roundtrip_preserves_gate_sequence(self, qft6):
        program = lift_circuit(qft6)
        rebuilt = program.to_circuit()
        assert [(g.name, g.qubits, g.params) for g in rebuilt] == [
            (g.name, g.qubits, g.params) for g in qft6 if not g.is_barrier
        ]

    def test_roundtrip_ghz(self):
        original = ghz_circuit(12)
        rebuilt = lift_circuit(original).to_circuit()
        assert rebuilt == original

    def test_instance_timeline_is_sorted(self):
        program = lift_circuit(ghz_circuit(6))
        times = [t for t, *_ in program.instance_timeline()]
        assert times == sorted(times)

    def test_compression_ratio(self):
        program = lift_circuit(ghz_circuit(20))
        assert program.compression_ratio() > 5

    def test_lifting_report_fields(self):
        report = lifting_report(lift_circuit(ghz_circuit(8)))
        assert report["num_instances"] == 8
        assert report["num_statements"] == 2
        assert report["largest_macro_gate"] == 7
        assert report["singleton_statements"] == 1


class TestPolyhedralViews:
    def test_iteration_domain_cardinality(self):
        program = lift_circuit(ghz_circuit(9))
        chain = program.statements[1]
        assert chain.iteration_domain().count() == 8

    def test_access_maps_cover_qubits(self):
        program = lift_circuit(ghz_circuit(5))
        chain = program.statements[1]
        first, second = chain.access_maps()
        assert sorted(p[1][0] for p in first.pairs()) == [0, 1, 2, 3]
        assert sorted(p[1][0] for p in second.pairs()) == [1, 2, 3, 4]

    def test_schedule_map_is_affine_in_time(self):
        program = lift_circuit(ghz_circuit(5))
        chain = program.statements[1]
        schedule = chain.schedule_map()
        times = sorted(p[1][0] for p in schedule.pairs())
        assert times == [1, 2, 3, 4]

    def test_instance_gate_matches_original(self, paper_example_circuit):
        program = lift_circuit(paper_example_circuit)
        gates = [g for s in program.statements for g in s.gates()]
        assert len(gates) == len(paper_example_circuit)
