"""Tests for the QASMBench-style circuit generators."""

import pytest

from repro.benchgen.qasmbench import (
    PAPER_TABLE_CIRCUITS,
    adder_circuit,
    bv_circuit,
    cat_state_circuit,
    ghz_circuit,
    ising_circuit,
    multiplier_circuit,
    qaoa_circuit,
    qasmbench_circuit,
    qasmbench_suite,
    qft_circuit,
    qram_circuit,
    qugan_circuit,
    w_state_circuit,
)
from repro.benchgen.random_circuits import random_circuit, random_two_qubit_circuit
from repro.circuit.metrics import two_qubit_gate_count


class TestFamilies:
    def test_ghz_structure(self):
        circuit = ghz_circuit(10)
        assert circuit.num_qubits == 10
        assert circuit.count_ops() == {"h": 1, "cx": 9}
        assert circuit.depth() == 10

    def test_cat_state_fanout(self):
        circuit = cat_state_circuit(6)
        assert all(g.qubits[0] == 0 for g in circuit.two_qubit_gates())

    def test_bv_interaction_count(self):
        circuit = bv_circuit(12)
        assert two_qubit_gate_count(circuit) == 11

    def test_qft_gate_count(self):
        n = 8
        circuit = qft_circuit(n)
        assert circuit.count_ops()["cp"] == n * (n - 1) // 2
        assert circuit.count_ops()["h"] == n
        assert circuit.count_ops()["swap"] == n // 2

    def test_qft_without_final_swaps(self):
        circuit = qft_circuit(6, include_final_swaps=False)
        assert "swap" not in circuit.count_ops()

    def test_w_state_touches_all_qubits(self):
        circuit = w_state_circuit(7)
        assert circuit.used_qubits() == set(range(7))

    def test_ising_is_nearest_neighbour(self):
        circuit = ising_circuit(10, steps=2)
        for gate in circuit.two_qubit_gates():
            assert abs(gate.qubits[0] - gate.qubits[1]) == 1

    def test_qaoa_has_mixer_and_cost_layers(self):
        circuit = qaoa_circuit(10, layers=2)
        counts = circuit.count_ops()
        assert counts["h"] == 10
        assert counts["rx"] == 20
        assert counts["cx"] > 0

    def test_qugan_has_long_range_couplings(self):
        circuit = qugan_circuit(20, layers=4)
        spans = [abs(g.qubits[0] - g.qubits[1]) for g in circuit.two_qubit_gates()]
        assert max(spans) >= 10

    def test_qram_only_uses_declared_qubits(self):
        circuit = qram_circuit(20)
        assert max(circuit.used_qubits()) < 20

    def test_adder_decomposed_to_two_qubit_gates(self):
        circuit = adder_circuit(16)
        assert all(g.num_qubits <= 2 for g in circuit)
        assert two_qubit_gate_count(circuit) > 20

    def test_multiplier_scales_with_width(self):
        small = multiplier_circuit(20)
        large = multiplier_circuit(45)
        assert len(large) > len(small)

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            ghz_circuit(1)
        with pytest.raises(ValueError):
            qram_circuit(4)


class TestSuite:
    def test_lookup_by_family(self):
        circuit = qasmbench_circuit("qft", 10)
        assert circuit.name == "qft_n10"

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            qasmbench_circuit("unknown", 10)

    def test_paper_table_circuits_present(self):
        suite = qasmbench_suite()
        for name, _, qubits in PAPER_TABLE_CIRCUITS:
            assert name in suite
            assert suite[name].num_qubits == qubits

    def test_suite_respects_qubit_bounds(self):
        suite = qasmbench_suite(max_qubits=40, min_qubits=20)
        assert all(20 <= c.num_qubits <= 40 for c in suite.values())

    def test_suite_has_enough_circuits(self):
        assert len(qasmbench_suite()) >= 40


class TestRandomCircuits:
    def test_random_circuit_is_reproducible(self):
        assert random_circuit(5, 30, seed=1) == random_circuit(5, 30, seed=1)

    def test_random_circuit_gate_count(self):
        assert len(random_circuit(5, 30, seed=2)) == 30

    def test_two_qubit_only_variant(self):
        circuit = random_two_qubit_circuit(6, 25, seed=3)
        assert all(g.is_two_qubit for g in circuit)

    def test_minimum_qubits(self):
        with pytest.raises(ValueError):
            random_circuit(1, 5)
