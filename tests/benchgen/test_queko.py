"""Tests for the QUEKO benchmark generator."""

import pytest

from repro.benchgen.queko import generate_queko_circuit, queko_dataset
from repro.circuit.validation import verify_routing
from repro.core.mapper import map_circuit
from repro.hardware.topologies import grid_topology, line_topology


GRID = grid_topology(3, 3)


class TestGeneration:
    def test_known_optimal_depth_is_achievable(self):
        """Placing logical qubits at the hidden layout executes the circuit as generated."""
        instance = generate_queko_circuit(GRID, depth=12, seed=3)
        unscrambled = instance.circuit.remapped(instance.hidden_layout)
        # Every two-qubit gate must act on coupled qubits under the hidden layout.
        for gate in unscrambled:
            if gate.is_two_qubit:
                assert GRID.are_adjacent(*gate.qubits)
        assert unscrambled.depth() == instance.optimal_depth

    def test_depth_equals_target(self):
        for depth in (1, 5, 20):
            instance = generate_queko_circuit(GRID, depth=depth, seed=1, scramble=False)
            assert instance.circuit.depth() == depth

    def test_scrambling_preserves_depth(self):
        instance = generate_queko_circuit(GRID, depth=15, seed=2)
        assert instance.circuit.depth() == 15

    def test_determinism(self):
        a = generate_queko_circuit(GRID, depth=10, seed=7)
        b = generate_queko_circuit(GRID, depth=10, seed=7)
        assert a.circuit == b.circuit

    def test_different_seeds_differ(self):
        a = generate_queko_circuit(GRID, depth=10, seed=1)
        b = generate_queko_circuit(GRID, depth=10, seed=2)
        assert a.circuit != b.circuit

    def test_density_controls_gate_count(self):
        sparse = generate_queko_circuit(GRID, depth=20, two_qubit_density=0.2, seed=1)
        dense = generate_queko_circuit(GRID, depth=20, two_qubit_density=0.8, seed=1)
        assert len(dense.circuit) > len(sparse.circuit)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_queko_circuit(GRID, depth=0)
        with pytest.raises(ValueError):
            generate_queko_circuit(GRID, depth=5, two_qubit_density=1.5)

    def test_no_qubit_reused_within_a_cycle(self):
        instance = generate_queko_circuit(GRID, depth=30, seed=5, scramble=False)
        # Depth equals the number of cycles, so no step can have used a qubit twice.
        assert instance.circuit.depth() == 30

    def test_metadata(self):
        instance = generate_queko_circuit(GRID, depth=8, seed=0, name="bench")
        assert instance.name == "bench"
        assert instance.num_qubits == 9
        assert instance.num_operations == len(instance.circuit)


class TestRoutingQueko:
    def test_routed_depth_is_at_least_optimal(self):
        line = line_topology(9)
        instance = generate_queko_circuit(GRID, depth=8, seed=4)
        result = map_circuit(instance.circuit, line)
        assert result.routed_depth >= instance.optimal_depth
        verify_routing(
            instance.circuit, result.routed_circuit, line.edges(), result.initial_layout
        )


class TestDataset:
    def test_dataset_sizes(self):
        dataset = queko_dataset("16qbt", depths=[5, 10], circuits_per_depth=3)
        assert len(dataset) == 6
        assert all(inst.num_qubits == 16 for inst in dataset)

    def test_dataset_names_encode_depth(self):
        dataset = queko_dataset("16qbt", depths=[5], circuits_per_depth=1)
        assert "d5" in dataset[0].name

    def test_81qbt_dataset_uses_king_grid(self):
        dataset = queko_dataset("81qbt", depths=[4], circuits_per_depth=1)
        assert dataset[0].num_qubits == 81

    def test_unknown_size_rejected(self):
        with pytest.raises(KeyError):
            queko_dataset("33qbt")
