"""Tests for the baseline mappers."""

import pytest

from repro.baselines.cirq_like import CirqLikeRouter
from repro.baselines.greedy import GreedyDistanceRouter
from repro.baselines.qmap_like import QmapLikeRouter
from repro.baselines.registry import all_mappers, available_baselines, baseline_router
from repro.baselines.sabre import LightSabreRouter, SabreRouter
from repro.baselines.tket_like import TketLikeRouter
from repro.benchgen.qasmbench import qft_circuit
from repro.benchgen.random_circuits import random_circuit
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.validation import verify_routing
from repro.core.mapper import QlosureMapper
from repro.hardware.topologies import grid_topology, line_topology


GRID = grid_topology(4, 4)
ALL_ROUTERS = (
    SabreRouter,
    LightSabreRouter,
    QmapLikeRouter,
    CirqLikeRouter,
    TketLikeRouter,
    GreedyDistanceRouter,
)


class TestAllBaselinesRouteCorrectly:
    @pytest.mark.parametrize("router_cls", ALL_ROUTERS)
    def test_far_cnot(self, router_cls, line5):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        result = router_cls(line5).run(circuit)
        verify_routing(circuit, result.routed_circuit, line5.edges(), result.initial_layout)
        assert result.swaps_added == 3

    @pytest.mark.parametrize("router_cls", ALL_ROUTERS)
    def test_qft_is_valid(self, router_cls):
        circuit = qft_circuit(7)
        result = router_cls(GRID).run(circuit)
        verify_routing(circuit, result.routed_circuit, GRID.edges(), result.initial_layout)

    @pytest.mark.parametrize("router_cls", ALL_ROUTERS)
    def test_random_circuit_is_valid(self, router_cls):
        circuit = random_circuit(10, 60, seed=13)
        result = router_cls(GRID).run(circuit)
        verify_routing(circuit, result.routed_circuit, GRID.edges(), result.initial_layout)

    @pytest.mark.parametrize("router_cls", ALL_ROUTERS)
    def test_no_swaps_when_not_needed(self, router_cls, line5):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        result = router_cls(line5).run(circuit)
        assert result.swaps_added == 0

    @pytest.mark.parametrize("router_cls", ALL_ROUTERS)
    def test_mapper_names_are_distinct(self, router_cls):
        assert router_cls.name != "base-router"


class TestSabreSpecifics:
    def test_extended_set_is_bounded(self):
        circuit = random_circuit(10, 120, seed=3)
        router = SabreRouter(GRID)
        result = router.run(circuit)
        assert result.swaps_added > 0

    def test_lightsabre_release_valve_configured(self):
        assert LightSabreRouter.release_valve_threshold > 0
        assert SabreRouter.release_valve_threshold == 0

    def test_decay_reset_on_execution(self, line5):
        router = SabreRouter(line5)
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        circuit.cx(0, 4)
        result = router.run(circuit)
        verify_routing(circuit, result.routed_circuit, line5.edges(), result.initial_layout)


class TestQmapSpecifics:
    def test_search_finds_short_swap_sequences(self, line5):
        circuit = QuantumCircuit(5)
        circuit.cx(1, 3)
        result = QmapLikeRouter(line5).run(circuit)
        assert result.swaps_added == 1

    def test_node_budget_fallback(self):
        router = QmapLikeRouter(GRID)
        router.node_budget = 1  # force the greedy fallback path
        circuit = QuantumCircuit(16)
        circuit.cx(0, 15)
        result = router.run(circuit)
        verify_routing(circuit, result.routed_circuit, GRID.edges(), result.initial_layout)


class TestRegistry:
    def test_available_baselines_are_canonical_and_deduped(self):
        names = available_baselines()
        assert set(names) == {"sabre", "lightsabre", "qmap", "cirq", "tket", "greedy"}
        # aliases must not show up as duplicate entries
        assert len(names) == len(set(names))
        assert "qmap-like" not in names and "pytket" not in names

    def test_lookup_by_alias(self):
        assert isinstance(baseline_router("pytket", GRID), TketLikeRouter)
        assert isinstance(baseline_router("SABRE", GRID), SabreRouter)
        assert isinstance(baseline_router("qmap-like", GRID), QmapLikeRouter)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            baseline_router("nonexistent", GRID)

    def test_qlosure_is_not_a_baseline(self):
        with pytest.raises(KeyError):
            baseline_router("qlosure", GRID)

    def test_all_mappers_includes_qlosure(self):
        mappers = all_mappers(GRID)
        assert set(mappers) == {"lightsabre", "qmap", "cirq", "tket", "qlosure"}
        assert isinstance(mappers["qlosure"], QlosureMapper)

    def test_all_mappers_can_exclude_qlosure(self):
        assert "qlosure" not in all_mappers(GRID, include_qlosure=False)
