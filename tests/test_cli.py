"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_defaults(self):
        args = build_parser().parse_args(["map", "--generate", "ghz:8"])
        assert args.backend == "sherbrooke"
        assert args.mapper == "qlosure"


class TestCommands:
    def test_backends_listing(self, capsys):
        assert main(["backends"]) == 0
        output = capsys.readouterr().out
        assert "sherbrooke" in output and "ankaa3" in output

    def test_backends_lists_canonical_routers_with_aliases(self, capsys):
        assert main(["backends"]) == 0
        output = capsys.readouterr().out
        assert "registered routers:" in output
        assert "tket-like, pytket" in output
        assert "qmap-like" in output
        # canonical names appear once, aliases never as standalone rows
        router_rows = [
            line for line in output.splitlines() if line.strip().startswith("qmap")
        ]
        assert len(router_rows) == 1

    def test_info_on_generated_circuit(self, capsys):
        assert main(["info", "--generate", "qft:8"]) == 0
        output = capsys.readouterr().out
        assert "qubits     : 8" in output
        assert "macro-gates" in output

    def test_map_generated_circuit(self, capsys):
        assert main(["map", "--generate", "ghz:10", "--backend", "ankaa3", "--verify"]) == 0
        output = capsys.readouterr().out
        assert "swaps added" in output

    def test_map_with_baseline(self, capsys):
        assert main(["map", "--generate", "ghz:8", "--backend", "ankaa3", "--mapper", "lightsabre"]) == 0
        assert "lightsabre" in capsys.readouterr().out

    def test_map_qasm_file_and_output(self, tmp_path, capsys):
        source = tmp_path / "bell.qasm"
        source.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n'
        )
        routed = tmp_path / "routed.qasm"
        code = main(
            ["map", "--qasm", str(source), "--backend", "ankaa3", "--output", str(routed)]
        )
        assert code == 0
        assert routed.exists()
        assert "cx" in routed.read_text()

    def test_compare_command(self, capsys):
        assert main(["compare", "--generate", "ghz:6", "--backend", "ankaa3"]) == 0
        output = capsys.readouterr().out
        assert "qlosure" in output and "lightsabre" in output

    def test_info_with_drawing(self, capsys):
        assert main(["info", "--generate", "ghz:4", "--draw"]) == 0
        output = capsys.readouterr().out
        assert "q0" in output and "X" in output

    def test_missing_circuit_source_errors(self, capsys):
        assert main(["info"]) == 2
        err = capsys.readouterr().err
        # the message must name the CLI flags, not Python kwargs
        assert "--qasm" in err and "--generate" in err

    def test_compare_prints_alias_note(self, capsys):
        assert main(["compare", "--generate", "ghz:6", "--backend", "ankaa3"]) == 0
        output = capsys.readouterr().out
        assert "aliases" in output and "pytket" in output

    def test_map_accepts_router_alias(self, capsys):
        assert main(
            ["map", "--generate", "ghz:8", "--backend", "ankaa3", "--mapper", "pytket"]
        ) == 0
        assert "tket" in capsys.readouterr().out


class TestErrorHandling:
    def test_unknown_router_exits_2_with_one_line_message(self, capsys):
        code = main(["map", "--generate", "ghz:8", "--mapper", "does-not-exist"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown router" in err
        assert len(err.strip().splitlines()) == 1  # one-line message, no traceback

    def test_unreadable_qasm_exits_2(self, capsys, tmp_path):
        code = main(["map", "--qasm", str(tmp_path / "missing.qasm")])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot read QASM file" in err

    def test_invalid_qasm_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.qasm"
        bad.write_text("OPENQASM 2.0;\nqreg q[2];\nnot-a-gate q[0];\n")
        code = main(["map", "--qasm", str(bad)])
        assert code == 2
        assert "invalid QASM" in capsys.readouterr().err

    def test_unknown_backend_exits_2(self, capsys):
        code = main(["map", "--generate", "ghz:8", "--backend", "nope"])
        assert code == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_unknown_generator_family_exits_2(self, capsys):
        code = main(["map", "--generate", "nosuchfamily:8"])
        assert code == 2
        assert "cannot generate" in capsys.readouterr().err


class TestFailureContract:
    """Exit-code contract: 2 = user error (one line), 1 = compile failure
    (structured :class:`CompileError` summary, never a raw traceback)."""

    def test_bench_zero_timeout_exits_2_with_one_line_message(self, capsys):
        code = main(["bench", "--quick", "--timeout", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--timeout" in err
        assert len(err.strip().splitlines()) == 1

    def test_bench_negative_retries_exits_2_with_one_line_message(self, capsys):
        code = main(["bench", "--quick", "--retries", "-1"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--retries" in err
        assert len(err.strip().splitlines()) == 1

    def test_self_loop_gate_exits_1_with_structured_summary(self, capsys, tmp_path):
        # Routing a two-qubit gate with repeated operands used to escape as a
        # raw ValueError traceback; it must surface as a structured summary.
        qasm = tmp_path / "selfloop.qasm"
        qasm.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\ncx q[0],q[0];\n'
        )
        code = main(["map", "--qasm", str(qasm), "--no-cache"])
        captured = capsys.readouterr()
        assert code == 1
        assert "repro-map: compile failed:" in captured.err
        assert "ValueError" in captured.err
        assert "Traceback" not in captured.err

    def test_bench_with_injected_fault_exits_1_and_lists_failures(
        self, capsys, tmp_path
    ):
        code = main(
            [
                "bench",
                "--quick",
                "--output",
                str(tmp_path / "bench.json"),
                "--inject-faults",
                "0:exception",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "request(s) failed" in captured.err
        assert "InjectedFault" in captured.err

    def test_bench_retry_absorbs_transient_fault(self, capsys, tmp_path):
        code = main(
            [
                "bench",
                "--quick",
                "--output",
                str(tmp_path / "bench.json"),
                "--retries",
                "1",
                "--inject-faults",
                "0:exception:0",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "FAILED" not in captured.out


class TestCacheFlags:
    MAP_ARGS = ["map", "--generate", "ghz:8", "--backend", "ankaa3", "--mapper", "greedy"]

    def test_map_with_cache_dir_misses_then_hits(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(self.MAP_ARGS + ["--cache-dir", cache_dir]) == 0
        assert "cache        : miss" in capsys.readouterr().out
        assert main(self.MAP_ARGS + ["--cache-dir", cache_dir]) == 0
        assert "cache        : hit" in capsys.readouterr().out

    def test_cached_map_output_is_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = self.MAP_ARGS + ["--cache-dir", cache_dir]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        strip = lambda text: [  # noqa: E731
            line for line in text.splitlines()
            if not line.startswith(("mapping time", "cache"))
        ]
        assert strip(warm) == strip(cold)

    def test_no_cache_bypasses(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(self.MAP_ARGS + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(self.MAP_ARGS + ["--no-cache"]) == 0
        assert "cache        :" not in capsys.readouterr().out

    def test_no_cache_with_cache_dir_exits_2(self, tmp_path, capsys):
        code = main(self.MAP_ARGS + ["--no-cache", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bench_rejects_no_cache_with_cache_dir_too(self, tmp_path, capsys):
        code = main(
            ["bench", "--quick", "--no-cache", "--cache-dir", str(tmp_path),
             "--output", str(tmp_path / "B.json")]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_cache_dir_isolation(self, tmp_path, capsys):
        first, second = str(tmp_path / "a"), str(tmp_path / "b")
        assert main(self.MAP_ARGS + ["--cache-dir", first]) == 0
        capsys.readouterr()
        # a different directory is a different store: no cross-talk
        assert main(self.MAP_ARGS + ["--cache-dir", second]) == 0
        assert "cache        : miss" in capsys.readouterr().out


class TestCacheCommand:
    def test_cache_info_without_dir_reports_disabled(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "info"]) == 0
        assert "disabled" in capsys.readouterr().out

    def test_cache_info_counts_entries(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(TestCacheFlags.MAP_ARGS + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "disk entries : 1" in out
        assert cache_dir in out

    def test_cache_clear_removes_entries(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(TestCacheFlags.MAP_ARGS + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed      : 1 entries" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        assert "disk entries : 0" in capsys.readouterr().out

    def test_cache_clear_without_dir_is_a_noop(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "clear"]) == 0
        assert "nothing to clear" in capsys.readouterr().out

    def test_cache_respects_env_dir(self, tmp_path, capsys, monkeypatch):
        cache_dir = str(tmp_path / "env-cache")
        assert main(TestCacheFlags.MAP_ARGS + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        assert main(["cache", "info"]) == 0
        assert "disk entries : 1" in capsys.readouterr().out

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["cache"])


class TestCacheBoundFlags:
    MAP_ARGS = TestCacheFlags.MAP_ARGS

    @pytest.mark.parametrize(
        "flag", [["--cache-max-bytes", "100"], ["--cache-max-entries", "1"],
                 ["--cache-readonly"]]
    )
    def test_bounds_without_cache_dir_exit_2(self, flag, capsys):
        assert main(self.MAP_ARGS + flag) == 2
        assert "require --cache-dir" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--cache-max-bytes", "--cache-max-entries"])
    def test_non_positive_bounds_exit_2(self, tmp_path, flag, capsys):
        code = main(self.MAP_ARGS + ["--cache-dir", str(tmp_path), flag, "0"])
        assert code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_bounded_map_evicts_and_info_reports_it(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        for seed in range(3):
            args = self.MAP_ARGS + [
                "--seed", str(seed), "--cache-dir", cache_dir,
                "--cache-max-entries", "1",
            ]
            assert main(args) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "disk entries : 1" in out
        assert "evictions    : 2" in out

    def test_readonly_map_serves_hits_but_never_writes(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(self.MAP_ARGS + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        args = self.MAP_ARGS + ["--cache-dir", cache_dir, "--cache-readonly"]
        assert main(args) == 0
        assert "cache        : hit" in capsys.readouterr().out
        # a different request through a readonly handle recomputes, no store
        miss_args = self.MAP_ARGS + [
            "--seed", "7", "--cache-dir", cache_dir, "--cache-readonly"
        ]
        assert main(miss_args) == 0
        assert "cache        : miss" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        assert "disk entries : 1" in capsys.readouterr().out

    def test_cache_info_renders_bounds_shards_and_ages(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(self.MAP_ARGS + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "max entries  : unbounded" in out
        assert "max bytes    : unbounded" in out
        assert "evictions    : 0 (0 bytes reclaimed)" in out
        assert "shards       : 1 populated" in out
        assert "entry ages   : <=1m 1" in out


class TestVersionFlag:
    def test_version_flag_prints_single_source_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro-map {__version__}"

    def test_package_and_setup_agree(self):
        # repro.__version__, repro._version and /healthz all read one file.
        from repro import __version__
        from repro._version import __version__ as source

        assert __version__ == source


class TestVerboseDigest:
    """Regression: the traceback digest is debugging detail -- it must only
    appear in compile-failure output under ``-v/--verbose``."""

    QASM = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\ncx q[0],q[0];\n'

    def test_default_failure_output_has_no_digest(self, capsys, tmp_path):
        qasm = tmp_path / "selfloop.qasm"
        qasm.write_text(self.QASM)
        assert main(["map", "--qasm", str(qasm), "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert "repro-map: compile failed:" in err
        assert "traceback" not in err

    def test_verbose_failure_output_includes_digest(self, capsys, tmp_path):
        qasm = tmp_path / "selfloop.qasm"
        qasm.write_text(self.QASM)
        assert main(["-v", "map", "--qasm", str(qasm), "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert "repro-map: compile failed:" in err
        assert "traceback " in err


class TestCacheInfoAges:
    def test_cache_info_reports_entry_ages(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(TestCacheFlags.MAP_ARGS + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "disk bytes   :" in out
        assert "oldest entry :" in out
        assert "newest entry :" in out

    def test_empty_cache_info_shows_placeholder_ages(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "disk entries : 0" in out
        assert "oldest entry : -" in out


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8653
        assert args.workers == 1
        assert args.queue_size == 64
        assert args.cache_dir is None
        assert args.timeout is None
        assert args.retries == 0

    def test_serve_rejects_bad_worker_count(self, capsys):
        assert main(["serve", "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert "--workers" in err
        assert len(err.strip().splitlines()) == 1

    def test_serve_rejects_bad_queue_size(self, capsys):
        assert main(["serve", "--queue-size", "0"]) == 2
        assert "--queue-size" in capsys.readouterr().err

    def test_serve_rejects_zero_timeout(self, capsys):
        assert main(["serve", "--timeout", "0"]) == 2
        assert "--timeout" in capsys.readouterr().err

    def test_serve_rejects_negative_retries(self, capsys):
        assert main(["serve", "--retries", "-1"]) == 2
        assert "--retries" in capsys.readouterr().err

    def test_serve_accepts_fault_plan_syntax(self):
        args = build_parser().parse_args(["serve", "--inject-faults", "*:exception"])
        assert args.inject_faults == "*:exception"
