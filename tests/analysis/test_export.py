"""Tests for experiment record export/import."""

import pytest

from repro.analysis.experiments import ComparisonRecord, compare_mappers
from repro.analysis.export import (
    export_records_csv,
    export_records_json,
    load_records_csv,
    load_records_json,
)
from repro.baselines.sabre import LightSabreRouter
from repro.benchgen.qasmbench import ghz_circuit
from repro.core.mapper import QlosureMapper
from repro.hardware.topologies import grid_topology


GRID = grid_topology(3, 3)


@pytest.fixture
def records():
    return compare_mappers(
        [ghz_circuit(6)],
        GRID,
        mappers={"qlosure": QlosureMapper(GRID), "lightsabre": LightSabreRouter(GRID)},
    )


class TestCsvRoundTrip:
    def test_roundtrip_preserves_fields(self, records, tmp_path):
        path = export_records_csv(records, tmp_path / "records.csv")
        loaded = load_records_csv(path)
        assert len(loaded) == len(records)
        for original, recovered in zip(records, loaded):
            assert recovered.circuit_name == original.circuit_name
            assert recovered.mapper_name == original.mapper_name
            assert recovered.swaps == original.swaps
            assert recovered.routed_depth == original.routed_depth
            assert recovered.optimal_depth == original.optimal_depth

    def test_csv_has_header(self, records, tmp_path):
        path = export_records_csv(records, tmp_path / "records.csv")
        first_line = path.read_text().splitlines()[0]
        assert first_line.startswith("circuit,backend,mapper")

    def test_optimal_depth_roundtrip(self, tmp_path):
        record = ComparisonRecord(
            circuit_name="c", backend_name="b", mapper_name="m", num_qubits=3,
            qops=5, two_qubit_gates=2, initial_depth=4, optimal_depth=7,
            swaps=1, routed_depth=9, runtime_seconds=0.1,
        )
        loaded = load_records_csv(export_records_csv([record], tmp_path / "one.csv"))
        assert loaded[0].optimal_depth == 7


class TestJsonRoundTrip:
    def test_roundtrip(self, records, tmp_path):
        path = export_records_json(records, tmp_path / "records.json")
        loaded = load_records_json(path)
        assert [(r.circuit_name, r.mapper_name, r.swaps) for r in loaded] == [
            (r.circuit_name, r.mapper_name, r.swaps) for r in records
        ]

    def test_json_is_a_list_of_objects(self, records, tmp_path):
        import json

        path = export_records_json(records, tmp_path / "records.json")
        payload = json.loads(path.read_text())
        assert isinstance(payload, list)
        assert all("mapper" in row for row in payload)

    def test_depth_factor_recomputable_after_load(self, records, tmp_path):
        loaded = load_records_json(export_records_json(records, tmp_path / "r.json"))
        for record in loaded:
            assert record.depth_factor > 0
