"""Tests for the comparison experiment drivers."""

import pytest

from repro.analysis.experiments import (
    ComparisonRecord,
    compare_mappers,
    depth_factor_table,
    mapping_time_table,
    qasmbench_table,
    queko_series,
    run_mapper_on_circuit,
    swap_ratio_table,
)
from repro.baselines.sabre import LightSabreRouter
from repro.benchgen.qasmbench import ghz_circuit, qft_circuit
from repro.benchgen.queko import generate_queko_circuit
from repro.core.mapper import QlosureMapper
from repro.hardware.topologies import grid_topology


GRID = grid_topology(4, 4)


def _record(mapper, circuit="c", swaps=10, depth=50, optimal=None, initial=20, runtime=1.0):
    return ComparisonRecord(
        circuit_name=circuit,
        backend_name="grid",
        mapper_name=mapper,
        num_qubits=8,
        qops=100,
        two_qubit_gates=60,
        initial_depth=initial,
        optimal_depth=optimal,
        swaps=swaps,
        routed_depth=depth,
        runtime_seconds=runtime,
    )


class TestRunners:
    def test_run_single_mapper(self):
        record = run_mapper_on_circuit(
            "qlosure", QlosureMapper(GRID), ghz_circuit(8), GRID
        )
        assert record.mapper_name == "qlosure"
        assert record.qops == 8
        assert record.routed_depth >= record.initial_depth

    def test_run_baseline_engine(self):
        record = run_mapper_on_circuit(
            "lightsabre", LightSabreRouter(GRID), qft_circuit(6), GRID
        )
        assert record.swaps >= 0
        assert record.runtime_seconds > 0

    def test_rejects_unknown_mapper_type(self):
        with pytest.raises(TypeError):
            run_mapper_on_circuit("x", object(), ghz_circuit(4), GRID)

    def test_compare_mappers_on_mixed_inputs(self):
        queko = generate_queko_circuit(grid_topology(3, 3), depth=6, seed=1)
        records = compare_mappers(
            [ghz_circuit(6), queko],
            GRID,
            mappers={"qlosure": QlosureMapper(GRID), "lightsabre": LightSabreRouter(GRID)},
        )
        assert len(records) == 4
        queko_records = [r for r in records if r.optimal_depth is not None]
        assert len(queko_records) == 2
        assert all(r.optimal_depth == 6 for r in queko_records)

    def test_compare_mappers_subset_selection(self):
        records = compare_mappers(
            [ghz_circuit(5)],
            GRID,
            mappers={"qlosure": QlosureMapper(GRID), "lightsabre": LightSabreRouter(GRID)},
            mapper_names=["qlosure"],
        )
        assert {r.mapper_name for r in records} == {"qlosure"}


class TestRecord:
    def test_depth_factor_prefers_optimal_depth(self):
        assert _record("m", optimal=10, depth=50).depth_factor == 5.0
        assert _record("m", optimal=None, depth=40, initial=20).depth_factor == 2.0

    def test_depth_overhead(self):
        assert _record("m", depth=50, initial=20).depth_overhead == 30

    def test_as_dict_round_numbers(self):
        data = _record("m").as_dict()
        assert data["mapper"] == "m"
        assert isinstance(data["depth_factor"], float)


class TestAggregations:
    def test_depth_factor_table_groups_by_size(self):
        records = [
            _record("qlosure", circuit="a", optimal=100, depth=500),
            _record("qlosure", circuit="b", optimal=600, depth=1800),
            _record("sabre", circuit="a", optimal=100, depth=700),
            _record("sabre", circuit="b", optimal=600, depth=3000),
        ]
        table = depth_factor_table(records, split_depth=500)
        assert table["qlosure"]["medium"] == 5.0
        assert table["qlosure"]["large"] == 3.0
        assert table["sabre"]["medium"] == 7.0
        assert table["sabre"]["large"] == 5.0

    def test_swap_ratio_table_relative_to_qlosure(self):
        records = [
            _record("qlosure", circuit="a", swaps=10, optimal=100),
            _record("sabre", circuit="a", swaps=15, optimal=100),
            _record("cirq", circuit="a", swaps=30, optimal=100),
        ]
        table = swap_ratio_table(records)
        assert table["sabre"]["medium"] == 1.5
        assert table["cirq"]["medium"] == 3.0
        assert "qlosure" not in table

    def test_mapping_time_table(self):
        records = [
            _record("qlosure", circuit="a", runtime=2.0, optimal=100),
            _record("qlosure", circuit="b", runtime=4.0, optimal=100),
        ]
        assert mapping_time_table(records)["qlosure"]["medium"] == 3.0

    def test_qasmbench_table_improvements(self):
        records = [
            _record("qlosure", circuit="qft_n10", swaps=80, depth=100),
            _record("sabre", circuit="qft_n10", swaps=100, depth=120),
        ]
        table = qasmbench_table(records)
        assert table["rows"]["qft_n10"]["sabre"]["swaps"] == 100
        assert table["improvement"]["sabre"]["swaps"] == pytest.approx(20.0)
        assert table["improvement"]["sabre"]["depth"] == pytest.approx(100 * 20 / 120, rel=1e-3)

    def test_queko_series_sorted_by_depth(self):
        records = [
            _record("qlosure", circuit="a", optimal=10, swaps=5, depth=30),
            _record("qlosure", circuit="b", optimal=20, swaps=9, depth=70),
            _record("qlosure", circuit="c", optimal=10, swaps=7, depth=34),
        ]
        series = queko_series(records)
        assert list(series["qlosure"].keys()) == [10, 20]
        assert series["qlosure"][10]["swaps"] == 6.0
        assert series["qlosure"][10]["depth"] == 32.0
