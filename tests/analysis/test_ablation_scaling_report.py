"""Tests for the ablation study, scaling measurement, reporting and scale config."""

import pytest

from repro.analysis.ablation import ABLATION_VARIANTS, ablation_study
from repro.analysis.config import BenchScale, bench_scale
from repro.analysis.experiments import ComparisonRecord
from repro.analysis.report import format_table, render_nested_table, render_records
from repro.analysis.scaling import mapping_time_scaling
from repro.baselines.sabre import LightSabreRouter
from repro.benchgen.queko import generate_queko_circuit
from repro.hardware.topologies import grid_topology


GRID = grid_topology(3, 3)
DEVICE = grid_topology(4, 4)


class TestAblation:
    def test_all_variants_run(self):
        circuits = [generate_queko_circuit(GRID, depth=6, seed=s) for s in range(2)]
        result = ablation_study(circuits, DEVICE)
        assert set(result.per_variant) == set(ABLATION_VARIANTS)
        for variant in ABLATION_VARIANTS:
            assert result.per_variant[variant]["swaps"] >= 0
            assert result.per_variant[variant]["depth"] > 0

    def test_baseline_improvement_is_zero(self):
        circuits = [generate_queko_circuit(GRID, depth=5, seed=1)]
        result = ablation_study(circuits, DEVICE, variants=("distance-only", "dependency-weighted"))
        assert result.improvement("distance-only", "swaps") == 0.0
        assert result.improvement("distance-only", "depth") == 0.0

    def test_per_circuit_results_recorded(self):
        circuits = [generate_queko_circuit(GRID, depth=5, seed=2)]
        result = ablation_study(circuits, DEVICE, variants=("distance-only",))
        assert len(result.per_circuit) == 1

    def test_unknown_variant_rejected(self):
        circuits = [generate_queko_circuit(GRID, depth=4, seed=0)]
        with pytest.raises(KeyError):
            ablation_study(circuits, DEVICE, variants=("not-a-variant",))


class TestScaling:
    def test_scaling_points_and_fit(self):
        result = mapping_time_scaling(DEVICE, GRID, depths=[4, 8, 12], seed=1)
        assert len(result.points) == 3
        qops = [p.qops for p in result.points]
        assert qops == sorted(qops)
        assert result.slope >= 0
        data = result.as_dict()
        assert data["mapper"] == "qlosure"
        assert len(data["points"]) == 3

    def test_scaling_with_baseline_mapper(self):
        result = mapping_time_scaling(
            DEVICE, GRID, depths=[4, 8], mapper=LightSabreRouter(DEVICE), seed=2
        )
        assert result.mapper_name == "lightsabre"


class TestBenchScale:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        monkeypatch.delenv("REPRO_BENCH_SEEDS", raising=False)
        scale = bench_scale()
        assert scale.scale == 1.0 and scale.seeds == 2

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        monkeypatch.setenv("REPRO_BENCH_SEEDS", "4")
        scale = bench_scale()
        assert scale.scale == 2.5 and scale.seeds == 4

    def test_invalid_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0")
        with pytest.raises(ValueError):
            bench_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "1")
        monkeypatch.setenv("REPRO_BENCH_SEEDS", "0")
        with pytest.raises(ValueError):
            bench_scale()

    def test_queko_depth_ladder_scales(self):
        assert BenchScale(1.0, 2).queko_depths((20, 40)) == [20, 40]
        assert BenchScale(0.5, 2).queko_depths((20, 40)) == [10, 20]

    def test_medium_large_split(self):
        medium, large = BenchScale(1.0, 2).medium_large_split([10, 20, 30, 40])
        assert medium == [10, 20, 30] and large == [40]

    def test_qasmbench_sizes_capped(self):
        sizes = BenchScale(10.0, 2).qasmbench_sizes((20, 54))
        assert max(sizes) <= 81


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 40]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_records(self):
        record = ComparisonRecord(
            circuit_name="c", backend_name="b", mapper_name="m", num_qubits=4,
            qops=10, two_qubit_gates=5, initial_depth=3, optimal_depth=None,
            swaps=2, routed_depth=6, runtime_seconds=0.5,
        )
        text = render_records([record])
        assert "c" in text and "m" in text and "0.500" in text

    def test_render_nested_table(self):
        text = render_nested_table({"qlosure": {"medium": 5.7, "large": 5.4}})
        assert "qlosure" in text and "5.7" in text and "large" in text
