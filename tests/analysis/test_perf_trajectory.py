"""Tests for the perf-smoke trajectory harness and its determinism gate.

The key property added with the compile cache: the ``--compare`` drift gate
keys on per-router mean swaps/depth (and the pinned fixture) *only* --
cache-timing fields (the record's top-level ``cache`` section) move run to
run without the routed bits changing and must never trip it.
"""

import copy

import pytest

from repro.analysis.perf_trajectory import (
    quality_regressions,
    render_trajectory,
    run_perf_smoke,
)


@pytest.fixture(scope="module")
def quick_record():
    return run_perf_smoke(quick=True)


class TestCacheFieldsNeverGate:
    def test_record_carries_cache_counters(self, quick_record):
        cache = quick_record["cache"]
        # no cache_dir: nothing persistent to hit, so no store is consulted
        assert cache["enabled"] is False
        assert cache["hits"] == 0
        assert cache["misses"] == sum(
            stats["runs"] for stats in quick_record["routers"].values()
        )

    def test_differing_cache_fields_do_not_trip_the_gate(self, quick_record):
        warm = copy.deepcopy(quick_record)
        warm["cache"] = {
            "enabled": True,
            "dir": "/somewhere/persistent",
            "hits": warm["cache"]["misses"],
            "misses": 0,
        }
        assert quality_regressions(warm, quick_record) == []
        cold = copy.deepcopy(quick_record)
        cold["cache"] = {"enabled": False, "dir": None, "hits": 0, "misses": 0}
        assert quality_regressions(cold, quick_record) == []

    def test_swaps_drift_still_trips_the_gate(self, quick_record):
        drifted = copy.deepcopy(quick_record)
        router = sorted(drifted["routers"])[0]
        drifted["routers"][router]["mean_swaps"] += 1
        problems = quality_regressions(drifted, quick_record)
        assert any("mean_swaps" in line for line in problems)

    def test_timing_changes_do_not_trip_the_gate(self, quick_record):
        faster = copy.deepcopy(quick_record)
        for stats in faster["routers"].values():
            stats["mean_seconds"] = 0.0
        faster["wall_seconds"] = 0.0
        assert quality_regressions(faster, quick_record) == []


class TestCachedRunsKeepTheTrajectoryHonest:
    def test_warm_disk_run_replays_identical_quality_and_timings(self, tmp_path, quick_record):
        cold = run_perf_smoke(quick=True, cache_dir=tmp_path)
        warm = run_perf_smoke(quick=True, cache_dir=tmp_path)
        assert warm["cache"]["hits"] == cold["cache"]["misses"] > 0
        assert warm["cache"]["misses"] == 0
        # Replayed pass timings keep mean_seconds a routing-time trajectory:
        # a warm record is indistinguishable router-wise from its cold run.
        assert warm["routers"] == cold["routers"]
        assert quality_regressions(warm, cold) == []

    def test_cache_disabled_run_matches_quality(self, quick_record):
        uncached = run_perf_smoke(quick=True, cache=False)
        assert uncached["cache"]["enabled"] is False
        assert quality_regressions(uncached, quick_record) == []


class TestRendering:
    def test_render_says_cache_off_without_a_store(self, quick_record):
        assert "cache off" in render_trajectory(quick_record)

    def test_render_mentions_cache_counters_for_disk_runs(self, tmp_path):
        record = run_perf_smoke(quick=True, cache_dir=tmp_path)
        assert "cache 0 hit(s)" in render_trajectory(record)
        warm = run_perf_smoke(quick=True, cache_dir=tmp_path)
        assert "cache 7 hit(s) / 0 miss(es)" in render_trajectory(warm)

    def test_render_handles_records_without_cache_section(self, quick_record):
        legacy = {k: v for k, v in quick_record.items() if k != "cache"}
        assert "cache off" in render_trajectory(legacy)
