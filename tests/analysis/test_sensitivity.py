"""Tests for the design-choice sensitivity sweeps."""

from repro.analysis.sensitivity import (
    best_value,
    decay_increment_sweep,
    window_constant_sweep,
)
from repro.benchgen.qasmbench import qft_circuit
from repro.benchgen.queko import generate_queko_circuit
from repro.hardware.topologies import grid_topology


GRID = grid_topology(3, 3)
DEVICE = grid_topology(4, 4)


def _circuits():
    return [generate_queko_circuit(GRID, depth=5, seed=s) for s in range(2)]


class TestWindowSweep:
    def test_sweep_covers_requested_constants(self):
        results = window_constant_sweep(_circuits(), DEVICE, constants=[1, 5])
        assert [r.value for r in results] == [1, 5]
        assert all(r.parameter == "lookahead_constant" for r in results)
        assert all(r.mean_swaps >= 0 for r in results)

    def test_default_constants_derived_from_degree(self):
        results = window_constant_sweep([qft_circuit(6)], DEVICE)
        values = [r.value for r in results]
        assert DEVICE.max_degree() + 1 in values
        assert 1 in values

    def test_per_circuit_results_recorded(self):
        results = window_constant_sweep(_circuits(), DEVICE, constants=[5])
        assert len(results[0].per_circuit) == 2


class TestDecaySweep:
    def test_sweep_values(self):
        results = decay_increment_sweep(_circuits(), DEVICE, increments=[0.0, 0.001])
        assert [r.value for r in results] == [0.0, 0.001]
        assert all(r.parameter == "decay_increment" for r in results)


class TestBestValue:
    def test_best_value_picks_minimum(self):
        results = window_constant_sweep(_circuits(), DEVICE, constants=[1, 5])
        best = best_value(results, metric="mean_swaps")
        assert best.mean_swaps == min(r.mean_swaps for r in results)
