"""Tests for the coupling graph model."""

import pytest

from repro.hardware.coupling import CouplingGraph


class TestConstruction:
    def test_basic_properties(self, line5):
        assert line5.num_qubits == 5
        assert line5.num_edges() == 4
        assert line5.max_degree() == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CouplingGraph(2, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            CouplingGraph(2, [(0, 5)])

    def test_needs_positive_qubits(self):
        with pytest.raises(ValueError):
            CouplingGraph(0, [])


class TestQueries:
    def test_adjacency(self, line5):
        assert line5.are_adjacent(0, 1)
        assert line5.are_adjacent(1, 0)
        assert not line5.are_adjacent(0, 2)

    def test_neighbors_sorted(self, grid3x3):
        assert grid3x3.neighbors(4) == [1, 3, 5, 7]

    def test_degree(self, grid3x3):
        assert grid3x3.degree(0) == 2
        assert grid3x3.degree(4) == 4

    def test_connectivity(self, line5):
        assert line5.is_connected()
        disconnected = CouplingGraph(4, [(0, 1), (2, 3)])
        assert not disconnected.is_connected()

    def test_edges_are_normalised(self):
        graph = CouplingGraph(3, [(2, 1), (1, 0)])
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_iteration_yields_qubits(self, line5):
        assert list(line5) == [0, 1, 2, 3, 4]


class TestDistances:
    def test_line_distances(self, line5):
        assert line5.distance(0, 4) == 4
        assert line5.distance(2, 2) == 0

    def test_ring_wraps_around(self, ring6):
        assert ring6.distance(0, 5) == 1
        assert ring6.distance(0, 3) == 3

    def test_distance_matrix_is_symmetric(self, grid3x3):
        matrix = grid3x3.distance_matrix()
        for a in range(9):
            for b in range(9):
                assert matrix[a][b] == matrix[b][a]

    def test_shortest_path_endpoints(self, grid3x3):
        path = grid3x3.shortest_path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == grid3x3.distance(0, 8) + 1
        for a, b in zip(path, path[1:]):
            assert grid3x3.are_adjacent(a, b)


class TestSubgraph:
    def test_subgraph_reindexes(self, grid3x3):
        sub = grid3x3.subgraph([0, 1, 3, 4])
        assert sub.num_qubits == 4
        assert sub.are_adjacent(0, 1)
        assert sub.are_adjacent(0, 2)
        assert not sub.are_adjacent(0, 3)

    def test_subgraph_drops_external_edges(self, line5):
        sub = line5.subgraph([0, 2, 4])
        assert sub.num_edges() == 0
