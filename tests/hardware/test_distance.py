"""Tests for BFS distances on coupling graphs."""

import pytest

from repro.hardware.coupling import CouplingGraph
from repro.hardware.distance import (
    FlatDistanceTable,
    bfs_distances,
    distance_matrix,
    flat_distance_table,
    shortest_path,
)
from repro.hardware.topologies import grid_topology, line_topology


class TestBfsDistances:
    def test_line_distances_from_end(self):
        line = line_topology(6)
        assert bfs_distances(line, 0) == [0, 1, 2, 3, 4, 5]

    def test_unreachable_marked_minus_one(self):
        disconnected = CouplingGraph(4, [(0, 1)])
        distances = bfs_distances(disconnected, 0)
        assert distances[1] == 1
        assert distances[2] == -1 and distances[3] == -1

    def test_matrix_diagonal_is_zero(self):
        grid = grid_topology(3, 3)
        matrix = distance_matrix(grid)
        assert all(matrix[q][q] == 0 for q in range(9))

    def test_matrix_matches_manhattan_distance_on_grid(self):
        grid = grid_topology(4, 4)
        matrix = distance_matrix(grid)
        for a in range(16):
            for b in range(16):
                manhattan = abs(a // 4 - b // 4) + abs(a % 4 - b % 4)
                assert matrix[a][b] == manhattan

    def test_triangle_inequality(self):
        grid = grid_topology(3, 4)
        matrix = distance_matrix(grid)
        n = grid.num_qubits
        for a in range(n):
            for b in range(n):
                for c in range(0, n, 3):
                    assert matrix[a][b] <= matrix[a][c] + matrix[c][b]


class TestFlatDistanceTable:
    def test_matches_nested_matrix(self):
        grid = grid_topology(3, 4)
        table = flat_distance_table(grid)
        nested = distance_matrix(grid)
        n = grid.num_qubits
        for a in range(n):
            assert table[a] == nested[a]
            for b in range(n):
                assert table.pair(a, b) == nested[a][b]

    def test_flat_buffer_is_row_major(self):
        line = line_topology(4)
        table = FlatDistanceTable(line)
        assert list(table.buffer) == [d for row in distance_matrix(line) for d in row]
        assert len(table.tobytes()) == table.buffer.itemsize * 16

    def test_iteration_and_len(self):
        line = line_topology(3)
        table = flat_distance_table(line)
        assert len(table) == 3
        assert [row[0] for row in table] == [0, 1, 2]

    def test_shared_per_coupling_graph(self):
        grid = grid_topology(3, 3)
        assert grid.distance_table() is grid.distance_table()
        assert grid.distance_matrix() is grid.distance_table().rows

    def test_scalar_query_uses_row_cache_not_all_pairs(self):
        grid = grid_topology(5, 5)
        assert grid.distance(0, 24) == 8
        # A single-pair query must not have materialised the full table.
        assert grid._distance is None
        assert set(grid._distance_rows) == {0}
        # The all-pairs table reuses already-computed rows afterwards.
        table = grid.distance_table()
        assert table[0][24] == 8


class TestShortestPath:
    def test_trivial_path(self):
        line = line_topology(3)
        assert shortest_path(line, 1, 1) == [1]

    def test_path_length_matches_distance(self):
        grid = grid_topology(3, 3)
        path = shortest_path(grid, 0, 8)
        assert len(path) == 5

    def test_path_uses_only_edges(self):
        grid = grid_topology(3, 3)
        path = shortest_path(grid, 2, 6)
        for a, b in zip(path, path[1:]):
            assert grid.are_adjacent(a, b)

    def test_no_path_raises(self):
        disconnected = CouplingGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            shortest_path(disconnected, 0, 3)
