"""Tests for topology families and the concrete paper back-ends."""

import pytest

from repro.hardware.backends import (
    ankaa3,
    available_backends,
    backend_by_name,
    grid_9x9,
    grid_16x16,
    sherbrooke,
    sherbrooke_2x,
)
from repro.hardware.topologies import (
    grid_topology,
    heavy_hex_topology,
    king_grid_topology,
    line_topology,
    ring_topology,
)


class TestGenericFamilies:
    def test_line(self):
        line = line_topology(7)
        assert line.num_edges() == 6
        assert line.max_degree() == 2

    def test_ring(self):
        ring = ring_topology(8)
        assert ring.num_edges() == 8
        assert all(ring.degree(q) == 2 for q in range(8))

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring_topology(2)

    def test_grid(self):
        grid = grid_topology(3, 4)
        assert grid.num_qubits == 12
        assert grid.num_edges() == 3 * 3 + 2 * 4  # horizontal + vertical
        assert grid.max_degree() == 4

    def test_king_grid_interior_degree(self):
        grid = king_grid_topology(4, 4)
        # Interior qubit (1,1) -> index 5 has 8 neighbours.
        assert grid.degree(5) == 8
        assert grid.degree(0) == 3

    def test_heavy_hex_degree_bound(self):
        lattice = heavy_hex_topology(5, 11)
        assert lattice.max_degree() <= 3
        assert lattice.is_connected()

    def test_heavy_hex_too_small(self):
        with pytest.raises(ValueError):
            heavy_hex_topology(1, 3)


class TestPaperBackends:
    def test_sherbrooke_shape(self):
        device = sherbrooke()
        assert device.num_qubits == 127
        assert device.max_degree() == 3
        assert device.is_connected()

    def test_ankaa3_shape(self):
        device = ankaa3()
        assert device.num_qubits == 82
        assert device.max_degree() == 4
        assert device.is_connected()

    def test_sherbrooke_2x_shape(self):
        device = sherbrooke_2x()
        assert device.num_qubits == 256
        assert device.is_connected()
        # The bridging qubits connect the two Sherbrooke copies.
        assert device.distance(0, 200) > 0

    def test_custom_grids(self):
        assert grid_9x9().num_qubits == 81
        assert grid_16x16().num_qubits == 256
        assert grid_9x9().max_degree() == 8

    def test_backend_lookup(self):
        assert backend_by_name("Sherbrooke").num_qubits == 127
        assert backend_by_name("ankaa-3").num_qubits == 82
        with pytest.raises(KeyError):
            backend_by_name("unknown-device")

    def test_available_backends_resolve(self):
        for name in available_backends():
            assert backend_by_name(name).num_qubits > 0

    def test_sherbrooke_is_sparser_than_ankaa(self):
        """The paper notes Sherbrooke (deg<=3) is harder to route on than Ankaa (deg<=4)."""
        sherbrooke_density = sherbrooke().num_edges() / sherbrooke().num_qubits
        ankaa_density = ankaa3().num_edges() / ankaa3().num_qubits
        assert sherbrooke_density < ankaa_density
