"""Tests for noise models and error-aware metrics."""

import math

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.hardware.noise import (
    NoiseModel,
    error_weighted_distance,
    success_probability,
)
from repro.hardware.topologies import grid_topology, line_topology


LINE = line_topology(4)


class TestNoiseModel:
    def test_uniform_model_covers_all_edges_and_qubits(self):
        noise = NoiseModel.uniform(LINE, two_qubit_error=0.02)
        assert len(noise.two_qubit_error) == LINE.num_edges()
        assert len(noise.single_qubit_error) == LINE.num_qubits
        assert noise.edge_error(0, 1) == pytest.approx(0.02)

    def test_edge_error_is_order_insensitive(self):
        noise = NoiseModel.uniform(LINE)
        assert noise.edge_error(1, 0) == noise.edge_error(0, 1)

    def test_unknown_edge_rejected(self):
        noise = NoiseModel.uniform(LINE)
        with pytest.raises(KeyError):
            noise.edge_error(0, 3)

    def test_swap_fidelity_is_cubed_edge_fidelity(self):
        noise = NoiseModel.uniform(LINE, two_qubit_error=0.1)
        assert noise.swap_fidelity(0, 1) == pytest.approx(0.9**3)

    def test_synthetic_model_is_deterministic_and_heterogeneous(self):
        a = NoiseModel.synthetic(LINE, seed=3)
        b = NoiseModel.synthetic(LINE, seed=3)
        c = NoiseModel.synthetic(LINE, seed=4)
        assert a.two_qubit_error == b.two_qubit_error
        assert a.two_qubit_error != c.two_qubit_error
        assert len(set(a.two_qubit_error.values())) > 1

    def test_synthetic_errors_are_bounded(self):
        noise = NoiseModel.synthetic(grid_topology(3, 3), spread=2.0, seed=1)
        assert all(0 < e <= 0.5 for e in noise.two_qubit_error.values())


class TestSuccessProbability:
    def test_empty_circuit_has_unit_probability(self):
        noise = NoiseModel.uniform(LINE)
        assert success_probability(QuantumCircuit(4), noise) == pytest.approx(1.0)

    def test_single_cx_probability(self):
        noise = NoiseModel.uniform(LINE, two_qubit_error=0.05)
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        assert success_probability(circuit, noise) == pytest.approx(0.95)

    def test_swap_counts_as_three_cx(self):
        noise = NoiseModel.uniform(LINE, two_qubit_error=0.05)
        circuit = QuantumCircuit(4)
        circuit.swap(0, 1)
        assert success_probability(circuit, noise) == pytest.approx(0.95**3)

    def test_probability_decreases_with_circuit_size(self):
        noise = NoiseModel.uniform(LINE, two_qubit_error=0.02)
        short = QuantumCircuit(4)
        short.cx(0, 1)
        long = QuantumCircuit(4)
        for _ in range(10):
            long.cx(0, 1)
        assert success_probability(long, noise) < success_probability(short, noise)

    def test_readout_included_when_requested(self):
        noise = NoiseModel.uniform(LINE, two_qubit_error=0.0, readout_error=0.1)
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        with_readout = success_probability(circuit, noise, include_readout=True)
        assert with_readout == pytest.approx(0.9**2)


class TestErrorWeightedDistance:
    def test_zero_on_diagonal(self):
        noise = NoiseModel.uniform(LINE)
        matrix = error_weighted_distance(LINE, noise)
        assert all(matrix[q][q] == 0.0 for q in range(4))

    def test_uniform_errors_recover_hop_count_shape(self):
        noise = NoiseModel.uniform(LINE, two_qubit_error=0.01)
        matrix = error_weighted_distance(LINE, noise)
        unit = matrix[0][1]
        assert matrix[0][3] == pytest.approx(3 * unit)

    def test_prefers_low_error_route(self):
        """On a 3x3 grid, the error distance between corners should route around a bad edge."""
        grid = grid_topology(3, 3)
        noise = NoiseModel.uniform(grid, two_qubit_error=0.01)
        noise.two_qubit_error[(0, 1)] = 0.4  # poison one edge out of the corner
        matrix = error_weighted_distance(grid, noise)
        direct_bad = -3 * math.log(0.6) + -3 * math.log(0.99)
        assert matrix[0][2] < direct_bad
