"""Tests for the Qlosure cost function M(s)."""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.config import QlosureConfig
from repro.core.cost import WindowScorer, swap_cost, tentative_physical
from repro.core.lookahead import LookaheadWindow, build_lookahead
from repro.hardware.topologies import line_topology

from tests.core.test_lookahead import make_state


def blocked_cnot_state(num_qubits: int = 5):
    """A single CNOT between the two ends of a line (distance 4)."""
    device = line_topology(num_qubits)
    circuit = QuantumCircuit(num_qubits)
    circuit.cx(0, num_qubits - 1)
    return make_state(circuit, device)


class TestTentativePhysical:
    def test_swapped_qubits_move(self):
        state = blocked_cnot_state()
        assert tentative_physical(state, 0, (0, 1)) == 1
        assert tentative_physical(state, 1, (0, 1)) == 0

    def test_untouched_qubits_stay(self):
        state = blocked_cnot_state()
        assert tentative_physical(state, 3, (0, 1)) == 3


class TestSwapCost:
    def test_helpful_swap_scores_lower(self):
        state = blocked_cnot_state()
        window = build_lookahead(state, lookahead_constant=3)
        config = QlosureConfig(use_decay=False)
        weights = {0: 5}
        helpful = swap_cost(state, (0, 1), window, weights, {}, config)
        useless = swap_cost(state, (1, 2), window, weights, {}, config)
        assert helpful < useless

    def test_weights_scale_contribution(self):
        state = blocked_cnot_state()
        window = build_lookahead(state, lookahead_constant=3)
        config = QlosureConfig(use_decay=False)
        low = swap_cost(state, (1, 2), window, {0: 1}, {}, config)
        high = swap_cost(state, (1, 2), window, {0: 10}, {}, config)
        assert high == pytest.approx(10 * low)

    def test_weights_ignored_when_disabled(self):
        state = blocked_cnot_state()
        window = build_lookahead(state, lookahead_constant=3)
        config = QlosureConfig(use_decay=False, use_dependence_weights=False)
        a = swap_cost(state, (1, 2), window, {0: 1}, {}, config)
        b = swap_cost(state, (1, 2), window, {0: 10}, {}, config)
        assert a == pytest.approx(b)

    def test_decay_multiplies_score(self):
        state = blocked_cnot_state()
        window = build_lookahead(state, lookahead_constant=3)
        config = QlosureConfig(use_decay=True)
        without_decay = swap_cost(state, (0, 1), window, {0: 1}, {0: 1.0, 1: 1.0}, config)
        with_decay = swap_cost(state, (0, 1), window, {0: 1}, {0: 1.5, 1: 1.0}, config)
        assert with_decay == pytest.approx(1.5 * without_decay)

    def test_decay_of_unoccupied_location_defaults_to_one(self):
        device = line_topology(6)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        state = make_state(circuit, device)
        window = build_lookahead(state, lookahead_constant=3)
        config = QlosureConfig(use_decay=True)
        # Physical qubit 3 hosts no logical qubit.
        cost = swap_cost(state, (2, 3), window, {0: 1}, {0: 2.0, 1: 2.0, 2: 2.0}, config)
        assert cost > 0


class TestLayerFactors:
    def _two_layer_state(self):
        device = line_topology(6)
        circuit = QuantumCircuit(6)
        circuit.cx(0, 3)  # front layer (blocked)
        circuit.cx(3, 5)  # second layer
        return make_state(circuit, device)

    def test_layer_discount_reduces_later_layer_influence(self):
        state = self._two_layer_state()
        window = build_lookahead(state, lookahead_constant=5)
        assert window.num_layers == 2
        config_with = QlosureConfig(use_decay=False, use_dependence_weights=False)
        config_without = QlosureConfig(
            use_decay=False, use_dependence_weights=False, use_layer_discount=False
        )
        scorer_with = WindowScorer(state, window, {}, {}, config_with)
        scorer_without = WindowScorer(state, window, {}, {}, config_without)
        # Discounting only shrinks the second layer's contribution.
        assert scorer_with.base_score() < scorer_without.base_score()

    def test_layer_normalization_divides_by_layer_size(self):
        device = line_topology(8)
        circuit = QuantumCircuit(8)
        circuit.cx(0, 4)
        circuit.cx(1, 5)
        state = make_state(circuit, device)
        window = build_lookahead(state, lookahead_constant=5)
        config_norm = QlosureConfig(use_decay=False, use_dependence_weights=False)
        config_raw = QlosureConfig(
            use_decay=False, use_dependence_weights=False, use_layer_normalization=False
        )
        normalized = WindowScorer(state, window, {}, {}, config_norm).base_score()
        raw = WindowScorer(state, window, {}, {}, config_raw).base_score()
        assert normalized == pytest.approx(raw / 2)


class TestWindowScorer:
    def test_incremental_matches_direct_evaluation(self):
        device = line_topology(7)
        circuit = QuantumCircuit(7)
        circuit.cx(0, 6)
        circuit.cx(6, 3)
        circuit.cx(3, 1)
        state = make_state(circuit, device)
        window = build_lookahead(state, lookahead_constant=4)
        weights = {0: 3, 1: 2, 2: 1}
        decay = {q: 1.0 + 0.01 * q for q in range(7)}
        config = QlosureConfig()
        scorer = WindowScorer(state, window, weights, decay, config)
        for candidate in state.candidate_swaps():
            direct = swap_cost(state, candidate, window, weights, decay, config)
            assert scorer.score(candidate) == pytest.approx(direct)

    def test_unrelated_swap_keeps_base_score(self):
        state = blocked_cnot_state(6)
        window = build_lookahead(state, lookahead_constant=3)
        config = QlosureConfig(use_decay=False)
        scorer = WindowScorer(state, window, {0: 1}, {}, config)
        # A swap between empty far-away qubits leaves every window gate alone.
        assert scorer.score((2, 3)) == pytest.approx(scorer.base_score())
