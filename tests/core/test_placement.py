"""Tests for initial placement strategies."""

import pytest

from repro.benchgen.qasmbench import ghz_circuit, qaoa_circuit
from repro.circuit.circuit import QuantumCircuit
from repro.core.placement import (
    greedy_placement,
    initial_layout,
    interaction_graph,
    placement_cost,
)
from repro.hardware.topologies import grid_topology, line_topology
from repro.routing.layout import Layout


GRID = grid_topology(4, 4)


class TestInteractionGraph:
    def test_counts_two_qubit_gates(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        circuit.cx(1, 2)
        circuit.h(0)
        weights = interaction_graph(circuit)
        assert weights == {(0, 1): 2, (1, 2): 1}

    def test_empty_for_single_qubit_circuit(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        assert interaction_graph(circuit) == {}


class TestGreedyPlacement:
    def test_places_all_qubits_injectively(self):
        circuit = qaoa_circuit(10, seed=1)
        layout = greedy_placement(circuit, GRID)
        placed = layout.as_list()
        assert len(set(placed)) == 10

    def test_star_interaction_graph_clusters_around_the_hub(self):
        """A fan-out (cat state) circuit should have its hub placed centrally,
        giving a placement no worse than the corner-anchored identity layout."""
        from repro.benchgen.qasmbench import cat_state_circuit

        circuit = cat_state_circuit(6)
        greedy_cost = placement_cost(circuit, GRID, greedy_placement(circuit, GRID))
        identity_cost = placement_cost(circuit, GRID, Layout.trivial(6, GRID.num_qubits))
        assert greedy_cost <= identity_cost

    def test_beats_identity_on_shuffled_chain(self):
        """A chain over a scrambled qubit order should be re-laid-out tightly."""
        circuit = QuantumCircuit(8)
        order = [3, 7, 0, 5, 2, 6, 1, 4]
        for a, b in zip(order, order[1:]):
            circuit.cx(a, b)
        device = line_topology(8)
        greedy_cost = placement_cost(circuit, device, greedy_placement(circuit, device))
        identity_cost = placement_cost(circuit, device, Layout.trivial(8, 8))
        assert greedy_cost <= identity_cost

    def test_handles_idle_qubits(self):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 1)
        layout = greedy_placement(circuit, GRID)
        assert len(set(layout.as_list())) == 5


class TestInitialLayoutDispatch:
    def test_identity(self):
        layout = initial_layout(ghz_circuit(4), GRID, "identity")
        assert layout.as_list() == [0, 1, 2, 3]

    def test_greedy(self):
        layout = initial_layout(ghz_circuit(4), GRID, "greedy")
        assert len(set(layout.as_list())) == 4

    def test_bidirectional(self):
        layout = initial_layout(ghz_circuit(4), GRID, "bidirectional", passes=1)
        assert len(set(layout.as_list())) == 4

    def test_unknown_strategy_rejected(self):
        with pytest.raises(KeyError):
            initial_layout(ghz_circuit(4), GRID, "magic")


class TestPlacementCost:
    def test_zero_when_all_pairs_adjacent(self):
        circuit = ghz_circuit(4)
        cost = placement_cost(circuit, line_topology(4), Layout.trivial(4, 4))
        assert cost == 3

    def test_penalises_distant_pairs(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        device = line_topology(6)
        near = placement_cost(circuit, device, Layout(2, 6, {0: 0, 1: 1}))
        far = placement_cost(circuit, device, Layout(2, 6, {0: 0, 1: 5}))
        assert near < far
