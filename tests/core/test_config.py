"""Tests for the Qlosure configuration and ablation variants."""

import pytest

from repro.core.config import QlosureConfig


class TestDefaults:
    def test_full_config_enables_everything(self):
        config = QlosureConfig.full()
        assert config.use_dependence_weights
        assert config.use_layer_discount
        assert config.use_layer_normalization
        assert config.use_decay

    def test_decay_increment_matches_paper(self):
        assert QlosureConfig().decay_increment == pytest.approx(0.001)

    def test_config_is_frozen(self):
        config = QlosureConfig()
        with pytest.raises(Exception):
            config.seed = 3


class TestVariants:
    def test_distance_only_disables_lookahead_and_weights(self):
        config = QlosureConfig.distance_only()
        assert not config.use_dependence_weights
        assert not config.use_decay
        assert config.lookahead_only_front

    def test_layer_adjusted_keeps_layers_without_weights(self):
        config = QlosureConfig.layer_adjusted()
        assert not config.use_dependence_weights
        assert config.use_layer_discount
        assert not config.lookahead_only_front

    def test_dependency_weighted_is_full(self):
        assert QlosureConfig.dependency_weighted() == QlosureConfig.full()

    def test_overrides(self):
        config = QlosureConfig.full(seed=7, max_lookahead_gates=64)
        assert config.seed == 7
        assert config.max_lookahead_gates == 64


class TestLookaheadConstant:
    def test_defaults_to_degree_plus_one(self):
        config = QlosureConfig()
        assert config.effective_lookahead_constant(3) == 4
        assert config.effective_lookahead_constant(8) == 9

    def test_explicit_constant_wins(self):
        config = QlosureConfig(lookahead_constant=6)
        assert config.effective_lookahead_constant(3) == 6

    def test_constant_is_at_least_one(self):
        config = QlosureConfig(lookahead_constant=0)
        assert config.effective_lookahead_constant(3) == 1
