"""Tests for the Qlosure router and mapper."""

import pytest

from repro.benchgen.qasmbench import ghz_circuit, qft_circuit
from repro.benchgen.random_circuits import random_circuit
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.validation import verify_routing
from repro.core.bidirectional import bidirectional_initial_layout, reversed_circuit
from repro.core.config import QlosureConfig
from repro.core.mapper import QlosureMapper, map_circuit
from repro.core.router import QlosureRouter
from repro.hardware.topologies import grid_topology, line_topology
from repro.routing.layout import Layout


GRID = grid_topology(4, 4)


class TestRouterCorrectness:
    def test_trivial_circuit(self, line5):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        result = QlosureRouter(line5).run(circuit)
        assert result.swaps_added == 0

    def test_far_cnot_minimal_swaps(self, line5):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        result = QlosureRouter(line5).run(circuit)
        assert result.swaps_added == 3
        verify_routing(circuit, result.routed_circuit, line5.edges(), result.initial_layout)

    def test_paper_example_is_routed_correctly(
        self, paper_example_circuit, paper_example_device
    ):
        result = QlosureRouter(paper_example_device).run(paper_example_circuit)
        verify_routing(
            paper_example_circuit,
            result.routed_circuit,
            paper_example_device.edges(),
            result.initial_layout,
        )
        assert result.swaps_added >= 1

    def test_qft_routing_is_valid(self):
        circuit = qft_circuit(8)
        result = QlosureRouter(GRID).run(circuit)
        verify_routing(circuit, result.routed_circuit, GRID.edges(), result.initial_layout)

    def test_random_circuit_routing_is_valid(self):
        circuit = random_circuit(10, 80, seed=11)
        result = QlosureRouter(GRID).run(circuit)
        verify_routing(circuit, result.routed_circuit, GRID.edges(), result.initial_layout)

    def test_all_ablation_variants_route_correctly(self):
        circuit = random_circuit(9, 50, seed=5)
        for config in (
            QlosureConfig.distance_only(),
            QlosureConfig.layer_adjusted(),
            QlosureConfig.dependency_weighted(),
        ):
            result = QlosureRouter(GRID, config).run(circuit)
            verify_routing(circuit, result.routed_circuit, GRID.edges(), result.initial_layout)

    def test_deterministic_given_seed(self):
        circuit = random_circuit(8, 60, seed=2)
        first = QlosureRouter(GRID, QlosureConfig(seed=42)).run(circuit)
        second = QlosureRouter(GRID, QlosureConfig(seed=42)).run(circuit)
        assert first.routed_circuit == second.routed_circuit

    def test_custom_initial_layout(self, line5):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        result = QlosureRouter(line5).run(circuit, Layout(2, 5, {0: 0, 1: 4}))
        verify_routing(circuit, result.routed_circuit, line5.edges(), result.initial_layout)
        assert result.swaps_added == 3


class TestMapper:
    def test_map_circuit_convenience(self):
        result = map_circuit(ghz_circuit(10), GRID, validate=True)
        assert result.mapper_name == "qlosure"
        assert result.swaps_added >= 0

    def test_metadata_contains_lifting_stats(self):
        result = QlosureMapper(GRID).map(ghz_circuit(10))
        assert result.metadata["gate_instances"] == 10
        assert result.metadata["macro_gates"] == 2
        assert result.metadata["compression_ratio"] == pytest.approx(5.0)

    def test_validation_flag(self):
        mapper = QlosureMapper(GRID, validate=True)
        result = mapper.map(qft_circuit(6))
        assert result.swaps_added >= 0

    def test_mapper_name_reflects_bidirectional(self):
        assert QlosureMapper(GRID).name == "qlosure"
        assert QlosureMapper(GRID, bidirectional_passes=1).name == "qlosure-bidirectional"

    def test_bidirectional_mapping_is_valid(self):
        circuit = random_circuit(8, 40, seed=9)
        mapper = QlosureMapper(GRID, bidirectional_passes=1, validate=True)
        result = mapper.map(circuit)
        assert result.swaps_added >= 0


class TestBidirectional:
    def test_reversed_circuit_reverses_gates(self):
        circuit = ghz_circuit(4)
        reverse = reversed_circuit(circuit)
        assert [g.qubits for g in reverse] == [g.qubits for g in circuit][::-1]

    def test_zero_passes_is_identity_layout(self):
        layout = bidirectional_initial_layout(ghz_circuit(5), GRID, passes=0)
        assert layout.as_list() == list(range(5))

    def test_layout_is_valid_placement(self):
        circuit = random_circuit(10, 60, seed=4)
        layout = bidirectional_initial_layout(circuit, GRID, passes=1)
        placed = layout.as_list()
        assert len(set(placed)) == circuit.num_qubits
        assert all(0 <= p < GRID.num_qubits for p in placed)

    def test_bidirectional_layout_not_worse_on_average(self):
        """A forward/backward pass should help (or at least not badly hurt) QFT routing."""
        circuit = qft_circuit(8)
        trivial = map_circuit(circuit, GRID).swaps_added
        improved_layout = bidirectional_initial_layout(circuit, GRID, passes=1)
        improved = map_circuit(circuit, GRID, initial_layout=improved_layout).swaps_added
        assert improved <= trivial * 1.25
