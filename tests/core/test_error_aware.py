"""Tests for the error-aware Qlosure variant."""

import pytest

from repro.benchgen.qasmbench import ghz_circuit, qft_circuit
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.validation import verify_routing
from repro.core.error_aware import ErrorAwareQlosureRouter, map_circuit_error_aware
from repro.core.router import QlosureRouter
from repro.hardware.noise import NoiseModel, success_probability
from repro.hardware.topologies import grid_topology


GRID = grid_topology(4, 4)


class TestErrorAwareRouting:
    def test_routing_remains_valid(self):
        circuit = qft_circuit(8)
        router = ErrorAwareQlosureRouter(GRID, NoiseModel.synthetic(GRID, seed=5))
        result = router.run(circuit)
        verify_routing(circuit, result.routed_circuit, GRID.edges(), result.initial_layout)

    def test_success_probability_attached_to_result(self):
        circuit = ghz_circuit(8)
        result = map_circuit_error_aware(circuit, GRID)
        probability = result.metadata["estimated_success_probability"]
        assert 0.0 < probability <= 1.0

    def test_default_noise_model_created(self):
        router = ErrorAwareQlosureRouter(GRID)
        assert router.noise is not None
        assert len(router.noise.two_qubit_error) == GRID.num_edges()

    def test_uniform_noise_matches_plain_qlosure_swaps(self):
        """With identical errors everywhere the error distance is proportional to
        hop count, so the error-aware router makes the same decisions."""
        circuit = qft_circuit(7)
        plain = QlosureRouter(GRID).run(circuit)
        aware = ErrorAwareQlosureRouter(GRID, NoiseModel.uniform(GRID)).run(circuit)
        assert aware.swaps_added == plain.swaps_added

    def test_avoids_poisoned_edge(self):
        """A CNOT between two qubits with one noisy and one clean route should
        be routed over the clean one when error-awareness is on."""
        noise = NoiseModel.uniform(GRID, two_qubit_error=0.01)
        # Poison the straight-line route from 0 to 3 along the top row.
        for edge in ((0, 1), (1, 2), (2, 3)):
            noise.two_qubit_error[edge] = 0.45
        circuit = QuantumCircuit(16)
        circuit.cx(0, 3)
        aware = ErrorAwareQlosureRouter(GRID, noise).run(circuit)
        aware_probability = success_probability(aware.routed_circuit, noise)
        plain = QlosureRouter(GRID).run(circuit)
        plain_probability = success_probability(plain.routed_circuit, noise)
        assert aware_probability >= plain_probability

    def test_name(self):
        assert ErrorAwareQlosureRouter(GRID).name == "qlosure-error-aware"
