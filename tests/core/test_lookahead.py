"""Tests for look-ahead window construction."""

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDAG
from repro.core.lookahead import LookaheadWindow, build_lookahead, window_size
from repro.hardware.coupling import CouplingGraph
from repro.routing.engine import RoutingState
from repro.routing.layout import Layout


def make_state(circuit: QuantumCircuit, device: CouplingGraph) -> RoutingState:
    """Build the routing state an engine would have before its first iteration."""
    dag = CircuitDAG(circuit, include_single_qubit=True)
    pending = {index: len(dag.predecessors(index)) for index in dag.gate_indices}
    return RoutingState(
        circuit=circuit,
        coupling=device,
        dag=dag,
        layout=Layout.trivial(circuit.num_qubits, device.num_qubits),
        distance=device.distance_matrix(),
        pending_predecessors=pending,
        front={index for index, count in pending.items() if count == 0},
    )


def chain_circuit(n: int) -> QuantumCircuit:
    circuit = QuantumCircuit(n)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    return circuit


class TestWindowSize:
    def test_scales_with_front_qubits(self, paper_example_circuit):
        from repro.hardware.topologies import line_topology

        state = make_state(paper_example_circuit, line_topology(6))
        # Front = {cx(0,1), cx(2,3)}; both are adjacent on a line under the
        # identity layout, so the unresolved front is empty and n_f defaults to 1.
        assert window_size(state, lookahead_constant=3, cap=100) == 3

    def test_cap_applies(self, grid4x4):
        circuit = chain_circuit(16)
        state = make_state(circuit, grid4x4)
        assert window_size(state, lookahead_constant=100, cap=8) <= 8


class TestLayers:
    def test_window_layers_follow_dependence_distance(self, grid4x4):
        circuit = QuantumCircuit(8)
        circuit.cx(0, 5)   # blocked on a 4x4 grid under the identity layout
        circuit.cx(5, 2)   # depends on the first gate
        circuit.cx(2, 7)   # depends on the second
        state = make_state(circuit, grid4x4)
        window = build_lookahead(state, lookahead_constant=5)
        assert window.num_layers == 3
        assert window.layers[0] == [0]
        assert window.layers[1] == [1]
        assert window.layers[2] == [2]

    def test_front_only_mode(self, grid4x4):
        circuit = chain_circuit(8)
        state = make_state(circuit, grid4x4)
        window = build_lookahead(state, lookahead_constant=5, front_only=True)
        assert window.num_layers == 1

    def test_single_qubit_gates_are_not_scored(self, grid4x4):
        circuit = QuantumCircuit(6)
        circuit.cx(0, 5)
        circuit.h(5)
        circuit.cx(5, 2)
        state = make_state(circuit, grid4x4)
        window = build_lookahead(state, lookahead_constant=5)
        for layer in window.layers:
            for index in layer:
                assert state.gate(index).is_two_qubit

    def test_window_respects_gate_budget(self, grid4x4):
        circuit = chain_circuit(16)
        state = make_state(circuit, grid4x4)
        small = build_lookahead(state, lookahead_constant=1, cap=3)
        assert small.num_gates <= 3

    def test_executed_gates_are_excluded(self, grid4x4):
        circuit = chain_circuit(6)
        state = make_state(circuit, grid4x4)
        # Pretend gate 0 has been executed.
        state.executed.add(0)
        state.front = {1}
        state.pending_predecessors[1] = 0
        window = build_lookahead(state, lookahead_constant=5)
        assert 0 not in window.gates()

    def test_empty_front_yields_empty_window(self, grid4x4):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        state = make_state(circuit, grid4x4)
        window = build_lookahead(state, lookahead_constant=5)
        assert window.num_gates == 0


class TestWindowContainer:
    def test_gate_listing(self):
        window = LookaheadWindow([[3, 4], [7]])
        assert window.gates() == [3, 4, 7]
        assert window.num_gates == 3
        assert window.num_layers == 2
        assert list(iter(window)) == [[3, 4], [7]]
