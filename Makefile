PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast test-golden test-cache test-cache-store test-faults test-serve test-obs bench serve check

## Tier-1 verification: the full suite including the paper benchmarks.
test:
	$(PYTHON) -m pytest -x -q

## Unit tests only (tier-1 minus the slow paper-table benchmarks/).
test-fast:
	$(PYTHON) -m pytest tests -x -q

## Golden determinism snapshots: every registered router against the pinned
## routed outputs under tests/data/golden/ (the required gate for hot-path
## changes; regen via tests/routing/test_golden.py --update-golden).
test-golden:
	$(PYTHON) -m pytest tests/routing/test_golden.py -q

## Compile-cache battery: serialization round-trip exactness (golden-hash
## oracle), fingerprint sensitivity, warm-vs-cold bit-for-bit determinism and
## bad-disk-entry robustness.  Fast (~5 s); runs in `make check` right after
## the golden snapshots, before the slow suite.
test-cache:
	$(PYTHON) -m pytest tests/api/test_serialize.py tests/api/test_fingerprint.py \
		tests/api/test_cache.py tests/analysis/test_perf_trajectory.py -q

## Bounded piece-store battery: shard layout + per-shard indexes, max_bytes/
## max_entries LRU eviction invariants (including seeded random
## interleavings), index<->directory crash consistency (torn lines, orphans,
## stale records), warm==cold bit-for-bit under eviction pressure, readonly
## fleet mode racing a live writer, the vanishing-entry-mid-scan regression,
## and transparent migration of pre-shard flat directories (golden fixture
## under tests/data/cache_legacy/).
test-cache-store:
	$(PYTHON) -m pytest tests/api/test_cache_store.py tests/serve/test_serve_cache.py -q

## Fault-injection suite: structured per-request failures (on_error="collect"),
## timeouts, retries with deterministic seeded backoff, worker-crash
## isolation, determinism-under-failure (faulted siblings never perturb clean
## results), and disk-tier failure simulation always degrading to a miss.
test-faults:
	$(PYTHON) -m pytest tests/api/test_faults.py tests/api/test_batch_failures.py -q

## Compile-service suite: queue ordering/backpressure, wire codecs and error
## mapping, handler-level service semantics (coalescing, jobs, drain, fault
## injection through the service path), plus one loopback HTTP smoke proving
## served-vs-direct bit-for-bit parity, single-execution coalescing,
## 429 + Retry-After and drain-exits-0.  Fast (~15 s); no ports are bound
## except by the loopback tests (ephemeral, 127.0.0.1 only).
test-serve:
	$(PYTHON) -m pytest tests/serve -q

## Observability suite: span recording/propagation, cross-process batch
## stitching, JSONL/Chrome exporters, trace CLI, Prometheus exposition,
## logging setup, traced==untraced bit-identity, and the no-op tracer
## overhead gate (<2% on the compile hot path).  Fast (~5 s).
test-obs:
	$(PYTHON) -m pytest tests/obs tests/serve/test_serve_obs.py tests/serve/test_serve_metrics.py -q

## Run the compile service locally on the default port (Ctrl-C to stop,
## `curl -X POST localhost:8653/admin/drain` for a graceful exit).
serve:
	$(PYTHON) -m repro serve --workers 2

## Routing perf smoke: routes a pinned QUEKO workload with every router and
## writes BENCH_routing.json, the machine-readable perf trajectory.
## Add `--compare BENCH_routing.json` (before overwriting) to fail on any
## per-router mean swaps/depth drift.
bench:
	$(PYTHON) benchmarks/perf_smoke.py

## Pre-commit gate: golden determinism snapshots first (a routed-output
## regression fails in seconds, before the slow suite), then the compile-cache
## battery, then the bounded piece-store battery, then the fault-injection
## suite, then the compile-service suite,
## then tier-1 tests, then a CLI smoke of the public surface
## (`repro-map map` routes through repro.api.compile; `bench --quick` drives
## the compile_many batch driver on a reduced fixture, run twice against one
## --cache-dir so the second run exercises warm disk hits end to end).
check: test-golden test-cache test-cache-store test-faults test-serve test-obs test
	$(PYTHON) -m repro map --generate qft:12 --backend ankaa3 --mapper sabre --verify
	$(PYTHON) -m repro map --generate ghz:10 --mapper qlosure --verify
	$(PYTHON) -m repro map --generate qft:10 --no-cache --trace-out $(or $(TMPDIR),/tmp)/repro-check.trace.jsonl
	$(PYTHON) -m repro trace summarize $(or $(TMPDIR),/tmp)/repro-check.trace.jsonl
	$(PYTHON) -m repro trace chrome $(or $(TMPDIR),/tmp)/repro-check.trace.jsonl --output $(or $(TMPDIR),/tmp)/repro-check.chrome.json
	rm -rf $(or $(TMPDIR),/tmp)/repro-cache-check
	$(PYTHON) -m repro bench --quick --workers 2 --cache-dir $(or $(TMPDIR),/tmp)/repro-cache-check --output $(or $(TMPDIR),/tmp)/BENCH_quick.json
	$(PYTHON) benchmarks/perf_smoke.py --quick --workers 2 --cache-dir $(or $(TMPDIR),/tmp)/repro-cache-check --output $(or $(TMPDIR),/tmp)/BENCH_quick_warm.json --compare $(or $(TMPDIR),/tmp)/BENCH_quick.json
	$(PYTHON) -m repro cache info --cache-dir $(or $(TMPDIR),/tmp)/repro-cache-check
	$(PYTHON) -m repro cache clear --cache-dir $(or $(TMPDIR),/tmp)/repro-cache-check
	@echo "make check: OK"
