PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast test-golden bench check

## Tier-1 verification: the full suite including the paper benchmarks.
test:
	$(PYTHON) -m pytest -x -q

## Unit tests only (tier-1 minus the slow paper-table benchmarks/).
test-fast:
	$(PYTHON) -m pytest tests -x -q

## Golden determinism snapshots: every registered router against the pinned
## routed outputs under tests/data/golden/ (the required gate for hot-path
## changes; regen via tests/routing/test_golden.py --update-golden).
test-golden:
	$(PYTHON) -m pytest tests/routing/test_golden.py -q

## Routing perf smoke: routes a pinned QUEKO workload with every router and
## writes BENCH_routing.json, the machine-readable perf trajectory.
## Add `--compare BENCH_routing.json` (before overwriting) to fail on any
## per-router mean swaps/depth drift.
bench:
	$(PYTHON) benchmarks/perf_smoke.py

## Pre-commit gate: golden determinism snapshots first (a routed-output
## regression fails in seconds, before the slow suite), then tier-1 tests,
## then a CLI smoke of the public surface (`repro-map map` routes through
## repro.api.compile; `bench --quick` drives the compile_many batch driver
## on a reduced fixture).
check: test-golden test
	$(PYTHON) -m repro map --generate qft:12 --backend ankaa3 --mapper sabre --verify
	$(PYTHON) -m repro map --generate ghz:10 --mapper qlosure --verify
	$(PYTHON) -m repro bench --quick --workers 2 --output $(or $(TMPDIR),/tmp)/BENCH_quick.json
	@echo "make check: OK"
