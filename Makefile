PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast bench check

## Tier-1 verification: the full suite including the paper benchmarks.
test:
	$(PYTHON) -m pytest -x -q

## Unit tests only (skips the slow paper-table benchmarks).
test-fast:
	$(PYTHON) -m pytest tests -x -q

## Routing perf smoke: routes a pinned QUEKO workload with every router and
## writes BENCH_routing.json, the machine-readable perf trajectory.
bench:
	$(PYTHON) benchmarks/perf_smoke.py

## Pre-commit gate: tier-1 tests plus a CLI smoke of the public surface
## (`repro-map map` routes through repro.api.compile; `bench --quick` drives
## the compile_many batch driver on a reduced fixture).
check: test
	$(PYTHON) -m repro map --generate qft:12 --backend ankaa3 --mapper sabre --verify
	$(PYTHON) -m repro map --generate ghz:10 --mapper qlosure --verify
	$(PYTHON) -m repro bench --quick --workers 2 --output $(or $(TMPDIR),/tmp)/BENCH_quick.json
	@echo "make check: OK"
