PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast bench

## Tier-1 verification: the full suite including the paper benchmarks.
test:
	$(PYTHON) -m pytest -x -q

## Unit tests only (skips the slow paper-table benchmarks).
test-fast:
	$(PYTHON) -m pytest tests -x -q

## Routing perf smoke: routes a pinned QUEKO workload with every router and
## writes BENCH_routing.json, the machine-readable perf trajectory.
bench:
	$(PYTHON) benchmarks/perf_smoke.py
